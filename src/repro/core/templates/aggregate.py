"""Aggregation templates: sort, hybrid hash-sort, and map aggregation.

Section V-B of the paper.  All three inline group tracking and aggregate
updates into a single code block: "the lack of function calls is
particularly important in aggregation".

* **sort aggregation** — input sorted on the grouping attributes; one
  linear scan detects group boundaries and folds aggregates on the fly.
* **hybrid hash-sort** — input partitioned on the first grouping
  attribute with each partition sorted on all of them; the sort-scan
  body runs per partition.
* **map aggregation** — one value directory per grouping attribute plus
  one array per aggregate function; each tuple's group maps to a scalar
  offset via the formula of Figure 4(b):
  ``offset = Σ_i M_i[v_i] · Π_{j>i} |M_j|``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.emitter import Emitter, GenContext
from repro.errors import CodegenError
from repro.memsim import costs
from repro.plan.descriptors import AGG_HYBRID, AGG_MAP, AGG_SORT, Aggregate
from repro.plan.expressions import (
    PARAMS_LOCAL,
    contains_parameter,
    expr_source,
    expr_source_resolved,
)
from repro.plan.layout import ColumnLayout
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundExpr,
)
from repro.storage.types import DOUBLE


def collect_aggregates(op: Aggregate) -> list[BoundAggregate]:
    """Unique aggregate nodes across the operator's outputs, in order."""
    seen: dict[BoundAggregate, None] = {}

    def walk(expr: BoundExpr) -> None:
        if isinstance(expr, BoundAggregate):
            seen.setdefault(expr, None)
        elif isinstance(expr, BoundArithmetic):
            walk(expr.left)
            walk(expr.right)

    for output in op.outputs:
        walk(output.expr)
    return list(seen)


class _AggCompiler:
    """Shared accumulator-variable planning for all three algorithms."""

    def __init__(self, op: Aggregate, input_layout: ColumnLayout):
        self.op = op
        self.input_layout = input_layout
        self.aggregates = collect_aggregates(op)
        #: aggregate node → accumulator variable names.
        self.acc_vars: dict[BoundAggregate, dict[str, str]] = {}
        for k, node in enumerate(self.aggregates):
            names: dict[str, str] = {}
            if node.func in ("sum", "avg"):
                names["sum"] = f"s{k}"
            if node.func in ("count", "avg"):
                names["count"] = f"c{k}"
            if node.func == "min":
                names["min"] = f"m{k}"
            if node.func == "max":
                names["max"] = f"x{k}"
            self.acc_vars[node] = names

    # -- per-group accumulator lifecycle --------------------------------------
    def init_lines(self) -> list[str]:
        lines = []
        for node in self.aggregates:
            names = self.acc_vars[node]
            if "sum" in names:
                zero = "0.0" if node.dtype == DOUBLE else "0"
                lines.append(f"{names['sum']} = {zero}")
            if "count" in names:
                lines.append(f"{names['count']} = 0")
            if "min" in names:
                lines.append(f"{names['min']} = None")
            if "max" in names:
                lines.append(f"{names['max']} = None")
        return lines

    def update_lines(self, row_var: str) -> list[str]:
        lines = []
        for node in self.aggregates:
            names = self.acc_vars[node]
            arg = (
                expr_source(node.argument, self.input_layout, row_var)
                if node.argument is not None
                else None
            )
            if "sum" in names:
                lines.append(f"{names['sum']} += {arg}")
            if "count" in names:
                lines.append(f"{names['count']} += 1")
            if "min" in names:
                var = names["min"]
                lines.append(f"_v = {arg}")
                lines.append(f"if {var} is None or _v < {var}:")
                lines.append(f"    {var} = _v")
            if "max" in names:
                var = names["max"]
                lines.append(f"_v = {arg}")
                lines.append(f"if {var} is None or _v > {var}:")
                lines.append(f"    {var} = _v")
        return lines

    # -- morsel-parallel partial states ----------------------------------------
    #
    # The parallel executor merges per-morsel partials represented as one
    # 4-slot list ``[sum, count, minimum, maximum]`` per aggregate node —
    # a shape that merges without knowing the aggregate function (sums
    # and counts add, minima/maxima compare).

    def partial_init_source(self) -> str:
        """Source of a fresh per-group partial-state list."""
        parts = []
        for node in self.aggregates:
            zero = "0.0" if node.dtype == DOUBLE else "0"
            parts.append(f"[{zero}, 0, None, None]")
        return "[" + ", ".join(parts) + "]"

    def partial_update_lines(self, row_var: str) -> list[str]:
        """Update lines against hoisted ``_a{k}`` state aliases."""
        lines = []
        for k, node in enumerate(self.aggregates):
            arg = (
                expr_source(node.argument, self.input_layout, row_var)
                if node.argument is not None
                else None
            )
            state = f"_a{k}"
            if node.func in ("sum", "avg"):
                lines.append(f"{state}[0] += {arg}")
            if node.func in ("count", "avg"):
                lines.append(f"{state}[1] += 1")
            if node.func == "min":
                lines.append(f"_v = {arg}")
                lines.append(f"if {state}[2] is None or _v < {state}[2]:")
                lines.append(f"    {state}[2] = _v")
            if node.func == "max":
                lines.append(f"_v = {arg}")
                lines.append(f"if {state}[3] is None or _v > {state}[3]:")
                lines.append(f"    {state}[3] = _v")
        return lines

    def result_source(self, node: BoundAggregate) -> str:
        names = self.acc_vars[node]
        if node.func == "sum":
            return names["sum"]
        if node.func == "count":
            return names["count"]
        if node.func == "avg":
            return (
                f"(({names['sum']} / {names['count']}) "
                f"if {names['count']} else None)"
            )
        if node.func == "min":
            return names["min"]
        return names["max"]

    # -- output row -------------------------------------------------------------
    def output_tuple_source(
        self, group_var: Callable[[int], str]
    ) -> str:
        """Source of the output tuple given group-key variable naming.

        ``group_var(i)`` names the value of the i-th grouping attribute.
        """
        position_of = {
            pos: i for i, pos in enumerate(self.op.group_positions)
        }

        def resolve(column: BoundColumn) -> str:
            input_pos = self.input_layout.position(column)
            if input_pos not in position_of:
                raise CodegenError(
                    f"non-grouped column {column.display()} in aggregate "
                    f"output"
                )
            return group_var(position_of[input_pos])

        parts = []
        for output in self.op.outputs:
            parts.append(self._output_expr(output.expr, resolve))
        inner = ", ".join(parts)
        return f"({inner},)" if len(parts) == 1 else f"({inner})"

    def _output_expr(
        self, expr: BoundExpr, resolve: Callable[[BoundColumn], str]
    ) -> str:
        if isinstance(expr, BoundAggregate):
            return self.result_source(expr)
        if isinstance(expr, BoundArithmetic):
            left = self._output_expr(expr.left, resolve)
            right = self._output_expr(expr.right, resolve)
            return f"({left} {expr.op} {right})"
        return expr_source_resolved(expr, resolve)


def emit_aggregate(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    func_name: str,
    input_layout: ColumnLayout,
) -> None:
    """Emit the aggregation function for one Aggregate descriptor."""
    compiler = _AggCompiler(op, input_layout)
    if not op.group_positions:
        _emit_global_aggregate(em, gen, op, func_name, compiler)
        _emit_partial_aggregate(em, gen, op, func_name, compiler)
    elif op.algorithm == AGG_MAP:
        _emit_map_aggregate(em, gen, op, func_name, compiler)
        _emit_partial_aggregate(em, gen, op, func_name, compiler)
    elif op.algorithm == AGG_SORT:
        _emit_sorted_aggregate(em, gen, op, func_name, compiler, hybrid=False)
    elif op.algorithm == AGG_HYBRID:
        _emit_sorted_aggregate(em, gen, op, func_name, compiler, hybrid=True)
    else:  # pragma: no cover - guarded by the optimizer
        raise AssertionError(op.algorithm)


# -- global (group-less) aggregation ---------------------------------------------------


def _emit_global_aggregate(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    func_name: str,
    compiler: _AggCompiler,
) -> None:
    row_bytes = len(compiler.input_layout) * 8
    with em.block(f"def {func_name}(ctx, rows):"):
        if _uses_params(op):
            em.emit(f"{PARAMS_LOCAL} = ctx.params")
        for line in compiler.init_lines():
            em.emit(line)
        if gen.traced:
            em.emit("_probe = ctx.probe")
            em.emit("_ib = ctx.probe.space.alloc(len(rows) * "
                    f"{row_bytes} + 64)")
            em.emit("_ri = 0")
        with em.block("for row in rows:"):
            if gen.traced:
                em.emit(f"_probe.load(_ib + _ri * {row_bytes}, {row_bytes})")
                em.emit("_ri += 1")
                em.emit(f"_probe.instr({_update_instr(compiler)})")
            for line in compiler.update_lines("row"):
                em.emit(line)
        em.emit(
            f"return [{compiler.output_tuple_source(lambda i: '_none_')}]"
        )
    em.emit()


# -- morsel-parallel partial aggregation -------------------------------------------------


def _emit_partial_aggregate(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    func_name: str,
    compiler: _AggCompiler,
) -> None:
    """Emit the thread-local partial entry point ``<name>_partial``.

    Emitted for the aggregation kinds whose input needs no global order
    (ungrouped aggregation and value-directory map aggregation): each
    parallel worker folds its morsels' staged rows into per-group 4-slot
    states, which the executor merges and finalizes (see
    :func:`repro.parallel.executor.merge_aggregate_partials`).
    """
    with em.block(f"def {func_name}_partial(ctx, rows):"):
        if not gen.optimized:
            em.emit(
                f"return _rt.generic_partial(rows, "
                f"ctx.agg_helpers[{op.op_id}])"
            )
        elif not op.group_positions:
            if _uses_params(op):
                em.emit(f"{PARAMS_LOCAL} = ctx.params")
            with em.block("if not rows:"):
                em.emit("return {}")
            em.emit(f"_st = {compiler.partial_init_source()}")
            for k in range(len(compiler.aggregates)):
                em.emit(f"_a{k} = _st[{k}]")
            with em.block("for row in rows:"):
                for line in compiler.partial_update_lines("row"):
                    em.emit(line)
            em.emit("return {(): _st}")
        else:
            if _uses_params(op):
                em.emit(f"{PARAMS_LOCAL} = ctx.params")
            em.emit("groups = {}")
            em.emit("get = groups.get")
            key_parts = ", ".join(
                f"row[{position}]" for position in op.group_positions
            )
            if len(op.group_positions) == 1:
                key_parts += ","
            with em.block("for row in rows:"):
                em.emit(f"_k = ({key_parts})")
                em.emit("_st = get(_k)")
                with em.block("if _st is None:"):
                    em.emit(
                        f"_st = groups[_k] = "
                        f"{compiler.partial_init_source()}"
                    )
                for k in range(len(compiler.aggregates)):
                    em.emit(f"_a{k} = _st[{k}]")
                for line in compiler.partial_update_lines("row"):
                    em.emit(line)
            em.emit("return groups")
    em.emit()


# -- sort / hybrid aggregation ----------------------------------------------------------


def _emit_sorted_aggregate(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    func_name: str,
    compiler: _AggCompiler,
    hybrid: bool,
) -> None:
    if not gen.optimized:
        _emit_generic_aggregate(em, op, func_name, hybrid)
        return
    row_bytes = len(compiler.input_layout) * 8
    argument = "parts" if hybrid else "rows"
    with em.block(f"def {func_name}(ctx, {argument}):"):
        if _uses_params(op):
            em.emit(f"{PARAMS_LOCAL} = ctx.params")
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            em.emit("_probe = ctx.probe")
            em.emit("_ib = ctx.probe.space.alloc(1 << 26)")
            em.emit("_ri = 0")
        if hybrid:
            with em.block("for rows in parts:"):
                _emit_sorted_scan_body(em, gen, op, compiler, row_bytes)
        else:
            _emit_sorted_scan_body(em, gen, op, compiler, row_bytes)
        em.emit("return out")
    em.emit()


def _emit_sorted_scan_body(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    compiler: _AggCompiler,
    row_bytes: int,
) -> None:
    """Linear scan over group-sorted rows with inline group tracking."""
    positions = op.group_positions
    em.emit("n = len(rows)")
    em.emit("i = 0")
    with em.block("while i < n:"):
        em.emit("row = rows[i]")
        for g, position in enumerate(positions):
            em.emit(f"gk{g} = row[{position}]")
        for line in compiler.init_lines():
            em.emit(line)
        with em.block("while i < n:"):
            em.emit("row = rows[i]")
            if gen.traced:
                em.emit(f"_probe.load(_ib + _ri * {row_bytes}, {row_bytes})")
                em.emit("_ri += 1")
                em.emit(f"_probe.instr({_update_instr(compiler)})")
            boundary = " or ".join(
                f"row[{position}] != gk{g}"
                for g, position in enumerate(positions)
            )
            with em.block(f"if {boundary}:"):
                em.emit("break")
            for line in compiler.update_lines("row"):
                em.emit(line)
            em.emit("i += 1")
        em.emit(
            f"append({compiler.output_tuple_source(lambda g: f'gk{g}')})"
        )


# -- map aggregation ------------------------------------------------------------------------


def _emit_map_aggregate(
    em: Emitter,
    gen: GenContext,
    op: Aggregate,
    func_name: str,
    compiler: _AggCompiler,
) -> None:
    if not gen.optimized:
        _emit_generic_aggregate(em, op, func_name, hybrid=False, use_map=True)
        return
    positions = op.group_positions
    sizes = [max(s, 1) for s in op.directory_sizes]
    n_groups = 1
    for size in sizes:
        n_groups *= size
    #: Multiplier for directory i: product of |M_j| for j > i (Fig. 4b).
    multipliers = []
    for g in range(len(sizes)):
        product = 1
        for j in range(g + 1, len(sizes)):
            product *= sizes[j]
        multipliers.append(product)
    row_bytes = len(compiler.input_layout) * 8
    num_aggs = max(len(compiler.aggregates), 1)

    with em.block(f"def {func_name}(ctx, rows):"):
        if _uses_params(op):
            em.emit(f"{PARAMS_LOCAL} = ctx.params")
        for g in range(len(positions)):
            em.emit(f"dir{g} = {{}}")
        em.emit(f"_keys = [None] * {n_groups}")
        for k, node in enumerate(compiler.aggregates):
            for kind, var in compiler.acc_vars[node].items():
                if kind == "sum":
                    zero = "0.0" if node.dtype == DOUBLE else "0"
                    em.emit(f"a_{var} = [{zero}] * {n_groups}")
                elif kind == "count":
                    em.emit(f"a_{var} = [0] * {n_groups}")
                else:
                    em.emit(f"a_{var} = [None] * {n_groups}")
        if gen.traced:
            em.emit("_probe = ctx.probe")
            em.emit(f"_ib = ctx.probe.space.alloc(len(rows) * {row_bytes} + 64)")
            em.emit(f"_db = ctx.probe.space.alloc({sum(sizes)} * 16 + 64)")
            em.emit(
                f"_ab = ctx.probe.space.alloc({n_groups * 8 * num_aggs} + 64)"
            )
            em.emit("_ri = 0")
        with em.block("for row in rows:"):
            if gen.traced:
                em.emit(f"_probe.load(_ib + _ri * {row_bytes}, {row_bytes})")
                em.emit("_ri += 1")
                em.emit(
                    f"_probe.instr({_update_instr(compiler) + len(positions) * costs.HASH_INSTRUCTIONS})"
                )
            dir_base = 0
            for g, position in enumerate(positions):
                em.emit(f"v{g} = row[{position}]")
                em.emit(f"i{g} = dir{g}.get(v{g}, -1)")
                with em.block(f"if i{g} < 0:"):
                    em.emit(f"i{g} = len(dir{g})")
                    with em.block(f"if i{g} >= {sizes[g]}:"):
                        em.emit("raise _MapOverflow()")
                    em.emit(f"dir{g}[v{g}] = i{g}")
                if gen.traced:
                    em.emit(
                        f"_probe.load(_db + {dir_base} + "
                        f"(hash(v{g}) % {sizes[g]}) * 16, 16)"
                    )
                dir_base += sizes[g] * 16
            offset_terms = " + ".join(
                f"i{g} * {multipliers[g]}" if multipliers[g] != 1 else f"i{g}"
                for g in range(len(positions))
            )
            em.emit(f"_g = {offset_terms}")
            if gen.traced:
                em.emit(
                    f"_probe.load(_ab + _g * {8 * num_aggs}, {8 * num_aggs})"
                )
            key_tuple = ", ".join(f"v{g}" for g in range(len(positions)))
            if len(positions) == 1:
                key_tuple += ","
            with em.block("if _keys[_g] is None:"):
                em.emit(f"_keys[_g] = ({key_tuple})")
            _emit_map_updates(em, compiler)
        # Emit output rows in first-seen group order.
        em.emit("out = []")
        em.emit("append = out.append")
        with em.block(f"for _g in range({n_groups}):"):
            em.emit("_key = _keys[_g]")
            with em.block("if _key is None:"):
                em.emit("continue")
            for k, node in enumerate(compiler.aggregates):
                for kind, var in compiler.acc_vars[node].items():
                    em.emit(f"{var} = a_{var}[_g]")
            em.emit(
                f"append({compiler.output_tuple_source(lambda g: f'_key[{g}]')})"
            )
        em.emit("return out")
    em.emit()


def _emit_map_updates(em: Emitter, compiler: _AggCompiler) -> None:
    for node in compiler.aggregates:
        names = compiler.acc_vars[node]
        arg = (
            expr_source(node.argument, compiler.input_layout, "row")
            if node.argument is not None
            else None
        )
        if "sum" in names:
            em.emit(f"a_{names['sum']}[_g] += {arg}")
        if "count" in names:
            em.emit(f"a_{names['count']}[_g] += 1")
        if "min" in names:
            var = f"a_{names['min']}"
            em.emit(f"_v = {arg}")
            with em.block(f"if {var}[_g] is None or _v < {var}[_g]:"):
                em.emit(f"{var}[_g] = _v")
        if "max" in names:
            var = f"a_{names['max']}"
            em.emit(f"_v = {arg}")
            with em.block(f"if {var}[_g] is None or _v > {var}[_g]:"):
                em.emit(f"{var}[_g] = _v")


# -- O0 path ------------------------------------------------------------------------------------


def _emit_generic_aggregate(
    em: Emitter,
    op: Aggregate,
    func_name: str,
    hybrid: bool,
    use_map: bool = False,
) -> None:
    argument = "parts" if hybrid else "rows"
    with em.block(f"def {func_name}(ctx, {argument}):"):
        em.emit(f"helpers = ctx.agg_helpers[{op.op_id}]")
        if use_map:
            em.emit(
                f"return _rt.hash_group_aggregate({argument}, "
                f"helpers.key_fn, helpers.init, helpers.update, "
                f"helpers.finalize)"
            )
        elif hybrid:
            em.emit("out = []")
            with em.block(f"for rows in {argument}:"):
                em.emit(
                    f"out.extend(_rt.sorted_group_scan(rows, "
                    f"{tuple(op.group_positions)!r}, helpers.init, "
                    f"helpers.update, helpers.finalize))"
                )
            em.emit("return out")
        else:
            em.emit(
                f"return _rt.sorted_group_scan(rows, "
                f"{tuple(op.group_positions)!r}, helpers.init, "
                f"helpers.update, helpers.finalize)"
            )
    em.emit()


def _uses_params(op: Aggregate) -> bool:
    return any(contains_parameter(output.expr) for output in op.outputs)


def _update_instr(compiler: _AggCompiler) -> int:
    return (
        costs.LOOP_ITER_INSTRUCTIONS
        + len(compiler.aggregates) * costs.AGGREGATE_UPDATE_INSTRUCTIONS
        + len(compiler.op.group_positions) * costs.PREDICATE_INSTRUCTIONS
    )
