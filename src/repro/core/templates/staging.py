"""Data staging templates: scan–filter–project with interleaved prep.

These instantiate the paper's Listing 1 (optimized table scan-select)
plus the staging variants of Section V-B: sorting, coarse/fine
partitioning, and hybrid hash-sort staging.  At ``O2`` everything is
inlined: constant field offsets, precompiled unpackers, inline predicate
source.  At ``O0`` the function delegates to the generic runtime helpers
through per-tuple function calls, which is the generic-hard-coded code
quality the paper's Table II contrasts against.
"""

from __future__ import annotations

from repro.core.emitter import Emitter, GenContext
from repro.memsim import costs
from repro.plan.descriptors import (
    PREP_NONE,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Restage,
    ScanStage,
)
from repro.plan.expressions import (
    PARAMS_LOCAL,
    comparisons_contain_parameter,
    conjunction_source_resolved,
)
from repro.sql.bound import BoundColumn, columns_in
from repro.storage.page import HEADER_SIZE


def emit_scan_stage(
    em: Emitter, gen: GenContext, op: ScanStage, func_name: str
) -> None:
    """Emit one staging function for a base-table input.

    The function is *morsel-aware*: it accepts an optional page range
    ``(_lo, _hi)`` so the parallel executor can run the same inlined
    scan loop over one slice of the table per worker.  The serial
    composer calls it with the defaults, which scan every page.
    """
    if gen.optimized:
        _emit_scan_optimized(em, gen, op, func_name)
    else:
        _emit_scan_generic(em, gen, op, func_name)


# -- O2: fully inlined scan -------------------------------------------------------


def _emit_scan_optimized(
    em: Emitter, gen: GenContext, op: ScanStage, func_name: str
) -> None:
    table = op.table
    schema = table.schema
    tuple_size = schema.tuple_size
    slots = op.output_layout.slots

    # Map every referenced base column to a schema index.
    projected = [(slot, schema.index_of(slot.column)) for slot in slots]
    filter_indexes: dict[str, int] = {}
    for comparison in op.filters:
        for column in columns_in(comparison.left) + columns_in(
            comparison.right
        ):
            filter_indexes[column.column] = schema.index_of(column.column)

    def var(index: int) -> str:
        return f"v{index}"

    def resolve(column: BoundColumn) -> str:
        return var(schema.index_of(column.column))

    predicate = conjunction_source_resolved(op.filters, resolve)
    projected_only = [
        (slot, idx)
        for slot, idx in projected
        if idx not in filter_indexes.values()
    ]
    row_tuple = _row_tuple_source(projected, var)
    row_bytes = len(slots) * 8
    per_tuple_instr = _scan_instr_estimate(op, len(projected))

    with em.block(f"def {func_name}(ctx, _lo=0, _hi=None):"):
        em.emit(f'table = ctx.tables["{op.binding}"]')
        em.emit("read_page = table.read_page")
        em.emit("if _hi is None:")
        em.emit("    _hi = table.num_pages")
        if comparisons_contain_parameter(op.filters):
            em.emit(f"{PARAMS_LOCAL} = ctx.params")
        _emit_collector_init(em, gen, op, row_bytes, "table.num_rows")
        if gen.traced:
            em.emit("_probe = ctx.probe")
            em.emit("_fid = table.file.file_id")
        with em.block("for p in range(_lo, _hi):"):
            em.emit("page = read_page(p)")
            em.emit("data = page.data")
            if gen.traced:
                em.emit("_pb = _page_addr(_fid, p)")
                em.emit("_probe.call(1)  # read_page: the unavoidable call")
            with em.block("for t in range(page.num_tuples):"):
                em.emit(f"off = {HEADER_SIZE} + t * {tuple_size}")
                if gen.traced:
                    em.emit(f"_probe.instr({per_tuple_instr})")
                # Decode filter fields first; short-circuit on failure.
                for column_name, index in sorted(
                    filter_indexes.items(), key=lambda kv: kv[1]
                ):
                    dtype = schema[index].dtype
                    offset = schema.offset_of(index)
                    if gen.traced:
                        em.emit(
                            f"_probe.load(_pb + off + {offset}, {dtype.size})"
                        )
                    em.emit(
                        f"{var(index)} = "
                        + gen.field_decode(dtype, "data", f"off + {offset}")
                    )
                if predicate != "True":
                    with em.block(f"if not ({predicate}):"):
                        em.emit("continue")
                for slot, index in projected_only:
                    dtype = schema[index].dtype
                    offset = schema.offset_of(index)
                    if gen.traced:
                        em.emit(
                            f"_probe.load(_pb + off + {offset}, {dtype.size})"
                        )
                    em.emit(
                        f"{var(index)} = "
                        + gen.field_decode(dtype, "data", f"off + {offset}")
                    )
                _emit_collector_append(em, gen, op, row_tuple, row_bytes, var)
        _emit_post_prep(em, gen, op.prep, row_bytes)
        em.emit(f"return {_result_var(op.prep)}")
    em.emit()


def _row_tuple_source(projected, var) -> str:
    parts = ", ".join(var(index) for _, index in projected)
    if len(projected) == 1:
        return f"({parts},)"
    return f"({parts})"


def _scan_instr_estimate(op: ScanStage, num_fields: int) -> int:
    instr = costs.LOOP_ITER_INSTRUCTIONS
    instr += len(op.filters) * costs.PREDICATE_INSTRUCTIONS
    instr += num_fields * costs.FIELD_ACCESS_INSTRUCTIONS
    instr += num_fields * costs.COPY_WORD_INSTRUCTIONS
    if op.prep.kind in (PREP_PARTITION, PREP_PARTITION_SORT):
        instr += costs.HASH_INSTRUCTIONS
    return instr


def _result_var(prep) -> str:
    if prep.kind in (PREP_PARTITION, PREP_PARTITION_SORT):
        return "parts"
    return "out"


def _emit_collector_init(
    em: Emitter, gen: GenContext, op, row_bytes: int, est_rows_expr: str
) -> None:
    prep = op.prep
    if prep.kind in (PREP_PARTITION, PREP_PARTITION_SORT):
        if prep.fine:
            em.emit("parts = {}")
        else:
            em.emit(f"parts = [[] for _k in range({prep.num_partitions})]")
        if gen.traced:
            em.emit(
                f"_sb = ctx.probe.space.alloc(({est_rows_expr} + 1) * "
                f"{row_bytes} * 2)"
            )
            em.emit(f"_pband = ({est_rows_expr} + 1) * {row_bytes}")
            if not prep.fine:
                em.emit(f"_pwn = [0] * {prep.num_partitions}")
            else:
                em.emit("_pwn = {}")
    else:
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            em.emit(
                f"_sb = ctx.probe.space.alloc(({est_rows_expr} + 1) * "
                f"{row_bytes})"
            )
            em.emit("_wn = 0")


def _emit_collector_append(
    em: Emitter, gen: GenContext, op, row_tuple: str, row_bytes: int, var
) -> None:
    prep = op.prep
    if prep.kind in (PREP_PARTITION, PREP_PARTITION_SORT):
        # The partition key is a staged slot: find its decoded variable.
        key_slot = op.output_layout.slots[prep.keys[0]]
        key_var = var(op.table.schema.index_of(key_slot.column))
        if prep.fine:
            em.emit(f"_bucket = parts.get({key_var})")
            with em.block("if _bucket is None:"):
                em.emit(f"parts[{key_var}] = [{row_tuple}]")
            with em.block("else:"):
                em.emit(f"_bucket.append({row_tuple})")
            if gen.traced:
                em.emit(f"_pi = hash({key_var}) % 64")
        else:
            mask = prep.num_partitions - 1
            em.emit(f"_pi = hash({key_var}) & {mask}")
            em.emit(f"parts[_pi].append({row_tuple})")
        if gen.traced:
            if prep.fine:
                em.emit("_n = _pwn.get(_pi, 0)")
                em.emit("_probe.load(_sb + _pi * (_pband // 64) + _n * "
                        f"{row_bytes}, {row_bytes})")
                em.emit("_pwn[_pi] = _n + 1")
            else:
                em.emit(
                    "_probe.load(_sb + _pi * (_pband // "
                    f"{prep.num_partitions}) + _pwn[_pi] * {row_bytes}, "
                    f"{row_bytes})"
                )
                em.emit("_pwn[_pi] += 1")
    else:
        em.emit(f"append({row_tuple})")
        if gen.traced:
            em.emit(f"_probe.load(_sb + _wn * {row_bytes}, {row_bytes})")
            em.emit("_wn += 1")


def _emit_post_prep(em: Emitter, gen: GenContext, prep, row_bytes: int) -> None:
    """Sorting after the scan loop, when the prep calls for it."""
    if prep.kind == PREP_SORT:
        em.emit(f"out.sort(key={_itemgetter_source(prep.keys)})")
        if gen.traced:
            _emit_sort_trace(em, "out", "_sb", row_bytes)
    elif prep.kind == PREP_PARTITION_SORT:
        iterable = "parts.values()" if prep.fine else "parts"
        with em.block(f"for _part in {iterable}:"):
            em.emit(f"_part.sort(key={_itemgetter_source(prep.keys)})")
            if gen.traced:
                _emit_sort_trace(em, "_part", "_sb", row_bytes)


def _itemgetter_source(keys) -> str:
    positions = ", ".join(str(k) for k in keys)
    return f"_itemgetter({positions})"


def _emit_sort_trace(em: Emitter, rows_var: str, base_var: str, row_bytes: int) -> None:
    """Charge n·log2(n) sort steps plus two sequential sweeps."""
    with em.block(f"if len({rows_var}) > 1:"):
        em.emit(f"_n = len({rows_var})")
        em.emit(
            f"_probe.instr(int(_n * _log2(_n)) * "
            f"{costs.SORT_STEP_INSTRUCTIONS})"
        )
        with em.block("for _i in range(0, _n, 8):"):
            em.emit(f"_probe.load({base_var} + _i * {row_bytes}, "
                    f"{row_bytes * 8})")


# -- O0: generic helper calls ----------------------------------------------------------


def _emit_scan_generic(
    em: Emitter, gen: GenContext, op: ScanStage, func_name: str
) -> None:
    prep = op.prep
    with em.block(f"def {func_name}(ctx, _lo=0, _hi=None):"):
        em.emit(f'table = ctx.tables["{op.binding}"]')
        em.emit(
            f"out = _rt.scan_filter_project(table, "
            f"ctx.predicates.get({op.op_id}), "
            f"ctx.projectors.get({op.op_id}), _lo, _hi)"
        )
        _emit_generic_prep(em, prep, "out")
        em.emit(f"return {_result_var(prep)}")
    em.emit()


def emit_restage(
    em: Emitter, gen: GenContext, op: Restage, func_name: str
) -> None:
    """Re-stage an intermediate result (sort it or partition it).

    Untraced modules additionally get a ``<name>_chunk`` entry point —
    the morsel-aware analogue of the staged scan's ``(_lo, _hi)`` page
    range: the parallel executor calls it once per contiguous row chunk
    of a large intermediate and reassembles the per-chunk sorted runs /
    partition sets with the order-preserving merge finishers, exactly
    like parallel scan staging.  The serial body is already correct
    over any private row chunk (chunks are slice copies, so even the
    in-place sort is safe), so the entry point is an alias — the same
    idiom the merge/nested join templates use for ``*_pair``.  Traced
    modules skip it because traced runs are serial.
    """
    prep = op.prep
    with em.block(f"def {func_name}(ctx, rows):"):
        if gen.optimized:
            if prep.kind == PREP_SORT:
                em.emit(f"rows.sort(key={_itemgetter_source(prep.keys)})")
                em.emit("return rows")
            elif prep.kind == PREP_PARTITION:
                key = prep.keys[0]
                if prep.fine:
                    em.emit("parts = {}")
                    with em.block("for row in rows:"):
                        em.emit(f"_bucket = parts.get(row[{key}])")
                        with em.block("if _bucket is None:"):
                            em.emit(f"parts[row[{key}]] = [row]")
                        with em.block("else:"):
                            em.emit("_bucket.append(row)")
                else:
                    mask = prep.num_partitions - 1
                    em.emit(
                        f"parts = [[] for _k in range({prep.num_partitions})]"
                    )
                    with em.block("for row in rows:"):
                        em.emit(
                            f"parts[hash(row[{key}]) & {mask}].append(row)"
                        )
                em.emit("return parts")
            elif prep.kind == PREP_PARTITION_SORT:
                mask = prep.num_partitions - 1
                em.emit(
                    f"parts = [[] for _k in range({prep.num_partitions})]"
                )
                key = prep.keys[0]
                with em.block("for row in rows:"):
                    em.emit(f"parts[hash(row[{key}]) & {mask}].append(row)")
                with em.block("for _part in parts:"):
                    em.emit(
                        f"_part.sort(key={_itemgetter_source(prep.keys)})"
                    )
                em.emit("return parts")
            else:
                em.emit("return rows")
        else:
            em.emit("out = rows")
            _emit_generic_prep(em, prep, "out")
            em.emit(f"return {_result_var(prep)}")
    em.emit()
    if not gen.traced:
        em.emit(f"{func_name}_chunk = {func_name}")
        em.emit()


def _emit_generic_prep(em: Emitter, prep, rows_var: str) -> None:
    if prep.kind == PREP_SORT:
        em.emit(f"out = _rt.sort_rows({rows_var}, {tuple(prep.keys)!r})")
    elif prep.kind == PREP_PARTITION:
        if prep.fine:
            em.emit(
                f"parts = _rt.fine_partition_rows({rows_var}, "
                f"{prep.keys[0]})"
            )
        else:
            em.emit(
                f"parts = _rt.partition_rows({rows_var}, {prep.keys[0]}, "
                f"{prep.num_partitions})"
            )
    elif prep.kind == PREP_PARTITION_SORT:
        em.emit(
            f"parts = _rt.partition_sort_rows({rows_var}, {prep.keys[0]}, "
            f"{tuple(prep.keys)!r}, {prep.num_partitions})"
        )
