"""Final-stage templates: projection, ORDER BY sorting, LIMIT."""

from __future__ import annotations

from repro.core.emitter import Emitter, GenContext
from repro.memsim import costs
from repro.plan.descriptors import Limit, Project, Sort
from repro.plan.expressions import (
    PARAMS_LOCAL,
    contains_parameter,
    expr_source,
)
from repro.plan.layout import ColumnLayout


def emit_project(
    em: Emitter,
    gen: GenContext,
    op: Project,
    func_name: str,
    input_layout: ColumnLayout,
) -> None:
    """Evaluate the select-list expressions over the final joined rows."""
    with em.block(f"def {func_name}(ctx, rows):"):
        if not gen.optimized:
            em.emit(f"projector = ctx.projectors[{op.op_id}]")
            em.emit("return [projector(row) for row in rows]")
        else:
            if any(contains_parameter(o.expr) for o in op.outputs):
                em.emit(f"{PARAMS_LOCAL} = ctx.params")
            expressions = ", ".join(
                expr_source(output.expr, input_layout, "row")
                for output in op.outputs
            )
            if len(op.outputs) == 1:
                expressions += ","
            if gen.traced:
                row_bytes = len(input_layout) * 8
                em.emit("_probe = ctx.probe")
                em.emit(
                    f"_ib = ctx.probe.space.alloc(len(rows) * {row_bytes} "
                    f"+ 64)"
                )
                em.emit("out = []")
                em.emit("append = out.append")
                em.emit("_ri = 0")
                with em.block("for row in rows:"):
                    em.emit(
                        f"_probe.load(_ib + _ri * {row_bytes}, {row_bytes})"
                    )
                    em.emit("_ri += 1")
                    em.emit(
                        f"_probe.instr("
                        f"{costs.LOOP_ITER_INSTRUCTIONS + len(op.outputs) * costs.FIELD_ACCESS_INSTRUCTIONS})"
                    )
                    em.emit(f"append(({expressions}))")
                em.emit("return out")
            else:
                em.emit(f"return [({expressions}) for row in rows]")
    em.emit()


def emit_sort(em: Emitter, gen: GenContext, op: Sort, func_name: str) -> None:
    """ORDER BY over the output rows."""
    with em.block(f"def {func_name}(ctx, rows):"):
        if not gen.optimized:
            em.emit(f"return _rt.sort_rows_mixed(rows, {tuple(op.keys)!r})")
        else:
            directions = {ascending for _, ascending in op.keys}
            if len(directions) == 1:
                positions = ", ".join(str(p) for p, _ in op.keys)
                reverse = ", reverse=True" if False in directions else ""
                em.emit(f"rows.sort(key=_itemgetter({positions}){reverse})")
            else:
                # Mixed directions: stable passes, last key first.
                for position, ascending in reversed(op.keys):
                    reverse = "" if ascending else ", reverse=True"
                    em.emit(
                        f"rows.sort(key=_itemgetter({position}){reverse})"
                    )
            if gen.traced:
                with em.block("if len(rows) > 1:"):
                    em.emit(
                        f"ctx.probe.instr(int(len(rows) * _log2(len(rows)))"
                        f" * {costs.SORT_STEP_INSTRUCTIONS})"
                    )
            em.emit("return rows")
    em.emit()


def emit_limit(em: Emitter, gen: GenContext, op: Limit, func_name: str) -> None:
    with em.block(f"def {func_name}(ctx, rows):"):
        em.emit(f"return rows[:{op.count}]")
    em.emit()
