"""Join templates: every algorithm instantiates the nested-loops shape.

This is the paper's Listing 2.  Merge join, partition (fine hash) join
and hybrid hash-sort-merge join differ only in how their inputs were
staged and in a few extra lines inside the loops — exactly the property
Section V-C highlights ("the new algorithm resulted in a few different
lines of code when compared to the existing evaluation algorithms").

The multi-way variant implements join teams: one deeply-nested loop
block per team, no intermediate materialisation, following the
loop-blocking layout the paper describes for multi-way joins.
"""

from __future__ import annotations

from repro.core.emitter import Emitter, GenContext
from repro.memsim import costs
from repro.plan.expressions import conjunction_source
from repro.plan.descriptors import (
    JOIN_HASH,
    JOIN_HYBRID,
    JOIN_MERGE,
    JOIN_NESTED,
    Join,
    MultiwayJoin,
)


def emit_join(em: Emitter, gen: GenContext, op: Join, func_name: str) -> None:
    """Emit the evaluation function for a binary join.

    Untraced modules additionally get a ``<name>_pair`` entry point the
    parallel executor drives per unit of work: one partition pair for
    the staged (hash/hybrid) joins, one outer row chunk for merge and
    nested-loops joins.  Traced modules skip it — traced runs are
    serial, and the pair body would need its own probe bookkeeping.
    """
    if not gen.optimized:
        _emit_join_generic(em, op, func_name)
        if not gen.traced:
            _emit_join_pair_generic(em, op, func_name)
        return
    if op.algorithm == JOIN_MERGE:
        _emit_merge_join(em, gen, op, func_name)
    elif op.algorithm == JOIN_HYBRID:
        _emit_hybrid_join(em, gen, op, func_name)
    elif op.algorithm == JOIN_HASH:
        _emit_fine_hash_join(em, gen, op, func_name)
    elif op.algorithm == JOIN_NESTED:
        _emit_nested_join(em, gen, op, func_name)
    else:  # pragma: no cover - guarded by the optimizer
        raise AssertionError(op.algorithm)
    if not gen.traced:
        _emit_join_pair(em, gen, op, func_name)


def _emit_join_pair(
    em: Emitter, gen: GenContext, op: Join, func_name: str
) -> None:
    """Emit the O2 per-pair/per-chunk parallel entry point."""
    if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
        # The serial function already has (ctx, left, right) shape and
        # is correct over any contiguous outer chunk.
        em.emit(f"{func_name}_pair = {func_name}")
        em.emit()
        return
    with em.block(f"def {func_name}_pair(ctx, left, right):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if op.algorithm == JOIN_HYBRID:
            with em.block("if not left or not right:"):
                em.emit("return out")
            em.emit(f"left.sort(key=_itemgetter({op.left_key}))")
            em.emit(f"right.sort(key=_itemgetter({op.right_key}))")
            _emit_merge_body(em, gen, op, "left", "right")
        else:  # fine partition pair: every tuple combination matches
            with em.block("for lrow in left:"):
                with em.block("for rrow in right:"):
                    em.emit("append(lrow + rrow)")
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()


def _emit_join_pair_generic(em: Emitter, op: Join, func_name: str) -> None:
    """Emit the O0 per-pair/per-chunk parallel entry point."""
    if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
        em.emit(f"{func_name}_pair = {func_name}")
        em.emit()
        return
    with em.block(f"def {func_name}_pair(ctx, left, right):"):
        if op.algorithm == JOIN_HYBRID:
            with em.block("if not left or not right:"):
                em.emit("return []")
            em.emit(f"left.sort(key=_itemgetter({op.left_key}))")
            em.emit(f"right.sort(key=_itemgetter({op.right_key}))")
            em.emit(
                f"out = _rt.merge_join(left, right, {op.left_key}, "
                f"{op.right_key})"
            )
        else:
            em.emit("out = _rt.nested_loops_join(left, right)")
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()




def _emit_residual_filter(em: Emitter, op: Join) -> None:
    """Enforce extra equi-join conjuncts over the join output."""
    if not op.residuals:
        return
    condition = conjunction_source(op.residuals, op.output_layout, "row")
    em.emit(f"out = [row for row in out if {condition}]")


def _emit_join_generic(em: Emitter, op: Join, func_name: str) -> None:
    with em.block(f"def {func_name}(ctx, left, right):"):
        if op.algorithm == JOIN_MERGE:
            em.emit(
                f"out = _rt.merge_join(left, right, {op.left_key}, "
                f"{op.right_key})"
            )
        elif op.algorithm == JOIN_HYBRID:
            em.emit(
                f"out = _rt.hybrid_join(left, right, {op.left_key}, "
                f"{op.right_key}, presorted=False)"
            )
        elif op.algorithm == JOIN_HASH:
            em.emit("out = _rt.fine_hash_join(left, right)")
        else:
            em.emit("out = _rt.nested_loops_join(left, right)")
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()


# -- merge join (Listing 2 with the merge-specific bound updates) --------------------


def _emit_merge_join(
    em: Emitter, gen: GenContext, op: Join, func_name: str
) -> None:
    with em.block(f"def {func_name}(ctx, left, right):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            _emit_join_trace_init(em, op)
        _emit_merge_body(em, gen, op, "left", "right")
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()


def _emit_merge_body(
    em: Emitter, gen: GenContext, op: Join, left_var: str, right_var: str
) -> None:
    """The merge loop over two key-sorted row lists."""
    lk, rk = op.left_key, op.right_key
    lrb = _row_bytes_left(op)
    rrb = _row_bytes_right(op)
    orb = lrb + rrb
    em.emit("i = 0")
    em.emit("j = 0")
    em.emit(f"n_l = len({left_var})")
    em.emit(f"n_r = len({right_var})")
    with em.block("while i < n_l and j < n_r:"):
        if gen.traced:
            em.emit(
                f"_probe.instr({costs.LOOP_ITER_INSTRUCTIONS + 2 * costs.PREDICATE_INSTRUCTIONS})"
            )
            em.emit(f"_probe.load(_lb + i * {lrb}, {lrb})")
            em.emit(f"_probe.load(_rb + j * {rrb}, {rrb})")
        em.emit(f"lrow = {left_var}[i]")
        em.emit(f"k = lrow[{lk}]")
        with em.block(f"if k < {right_var}[j][{rk}]:"):
            em.emit("i += 1")
            em.emit("continue")
        with em.block(f"if k > {right_var}[j][{rk}]:"):
            em.emit("j += 1")
            em.emit("continue")
        em.emit("j0 = j")
        with em.block(f"while j < n_r and {right_var}[j][{rk}] == k:"):
            em.emit(f"append(lrow + {right_var}[j])")
            if gen.traced:
                _emit_output_trace(em, orb)
            em.emit("j += 1")
        em.emit("i += 1")
        # Backtrack over the matching inner group for equal outer keys;
        # small groups tend to be cache resident (Section V-B).
        with em.block(f"while i < n_l and {left_var}[i][{lk}] == k:"):
            em.emit(f"lrow = {left_var}[i]")
            if gen.traced:
                em.emit(f"_probe.load(_lb + i * {lrb}, {lrb})")
            with em.block("for jj in range(j0, j):"):
                em.emit(f"append(lrow + {right_var}[jj])")
                if gen.traced:
                    em.emit(f"_probe.load(_rb + jj * {rrb}, {rrb})")
                    _emit_output_trace(em, orb)
            em.emit("i += 1")


# -- hybrid hash-sort-merge join -------------------------------------------------------


def _emit_hybrid_join(
    em: Emitter, gen: GenContext, op: Join, func_name: str
) -> None:
    lk, rk = op.left_key, op.right_key
    with em.block(f"def {func_name}(ctx, left_parts, right_parts):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            _emit_join_trace_init(em, op)
        with em.block("for left, right in zip(left_parts, right_parts):"):
            with em.block("if not left or not right:"):
                em.emit("continue")
            # Sort the corresponding partitions right before joining so
            # they are L2-cache resident during the merge (Section V-B).
            em.emit(f"left.sort(key=_itemgetter({lk}))")
            em.emit(f"right.sort(key=_itemgetter({rk}))")
            if gen.traced:
                _emit_partition_sort_trace(em, op)
            _emit_merge_body(em, gen, op, "left", "right")
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()


# -- fine partition join ------------------------------------------------------------------


def _emit_fine_hash_join(
    em: Emitter, gen: GenContext, op: Join, func_name: str
) -> None:
    lrb = _row_bytes_left(op)
    rrb = _row_bytes_right(op)
    orb = lrb + rrb
    with em.block(f"def {func_name}(ctx, left_parts, right_parts):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            _emit_join_trace_init(em, op)
        with em.block("for k, lrows in left_parts.items():"):
            em.emit("rrows = right_parts.get(k)")
            with em.block("if rrows is None:"):
                em.emit("continue")
            # Fine partitioning: every pair of tuples in corresponding
            # partitions matches — no comparisons inside the loops.
            with em.block("for lrow in lrows:"):
                with em.block("for rrow in rrows:"):
                    em.emit("append(lrow + rrow)")
                    if gen.traced:
                        em.emit(
                            f"_probe.instr({costs.LOOP_ITER_INSTRUCTIONS})"
                        )
                        _emit_output_trace(em, orb)
        _emit_residual_filter(em, op)
        em.emit("return out")
    em.emit()


def _emit_nested_join(
    em: Emitter, gen: GenContext, op: Join, func_name: str
) -> None:
    orb = _row_bytes_left(op) + _row_bytes_right(op)
    with em.block(f"def {func_name}(ctx, left, right):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            _emit_join_trace_init(em, op)
        with em.block("for lrow in left:"):
            with em.block("for rrow in right:"):
                if gen.traced:
                    em.emit(f"_probe.instr({costs.LOOP_ITER_INSTRUCTIONS})")
                if op.residuals:
                    # A keyed nested-loops join: the equi predicate (and
                    # any extra conjuncts) rides as residuals, evaluated
                    # inside the loop so non-matching pairs are never
                    # materialised.
                    condition = conjunction_source(
                        op.residuals, op.output_layout, "row"
                    )
                    em.emit("row = lrow + rrow")
                    with em.block(f"if {condition}:"):
                        em.emit("append(row)")
                        if gen.traced:
                            _emit_output_trace(em, orb)
                else:
                    em.emit("append(lrow + rrow)")
                    if gen.traced:
                        _emit_output_trace(em, orb)
        em.emit("return out")
    em.emit()


# -- join teams -------------------------------------------------------------------------


def emit_multiway_join(
    em: Emitter, gen: GenContext, op: MultiwayJoin, func_name: str
) -> None:
    """Emit a join-team function over n staged inputs."""
    n = len(op.input_ops)
    params = ", ".join(f"in{k}" for k in range(n))
    if not gen.optimized:
        with em.block(f"def {func_name}(ctx, {params}):"):
            positions = tuple(op.key_positions)
            if op.algorithm == JOIN_MERGE:
                em.emit(
                    f"return _rt.multiway_merge_join([{params}], "
                    f"{positions!r})"
                )
            else:
                em.emit("out = []")
                em.emit(f"_num_parts = len(in0)")
                with em.block("for _m in range(_num_parts):"):
                    em.emit(
                        "_parts = ["
                        + ", ".join(f"in{k}[_m]" for k in range(n))
                        + "]"
                    )
                    for k in range(n):
                        em.emit(
                            f"_parts[{k}].sort(key=_itemgetter("
                            f"{op.key_positions[k]}))"
                        )
                    em.emit(
                        f"out.extend(_rt.multiway_merge_join(_parts, "
                        f"{positions!r}))"
                    )
                em.emit("return out")
        em.emit()
        return

    with em.block(f"def {func_name}(ctx, {params}):"):
        em.emit("out = []")
        em.emit("append = out.append")
        if gen.traced:
            em.emit("_probe = ctx.probe")
            em.emit("_ob = ctx.probe.space.alloc(1 << 24)")
            em.emit("_wn = 0")
        if op.algorithm == JOIN_MERGE:
            _emit_team_merge_body(
                em, gen, op, [f"in{k}" for k in range(n)]
            )
        else:
            with em.block("for _m in range(len(in0)):"):
                part_vars = []
                for k in range(n):
                    em.emit(f"p{k} = in{k}[_m]")
                    part_vars.append(f"p{k}")
                empties = " or ".join(f"not p{k}" for k in range(n))
                with em.block(f"if {empties}:"):
                    em.emit("continue")
                for k in range(n):
                    em.emit(
                        f"p{k}.sort(key=_itemgetter({op.key_positions[k]}))"
                    )
                _emit_team_merge_body(em, gen, op, part_vars)
        em.emit("return out")
    em.emit()


def _emit_team_merge_body(
    em: Emitter, gen: GenContext, op: MultiwayJoin, inputs: list[str]
) -> None:
    """N-ary merge over key-sorted inputs, with generated loop nesting."""
    n = len(inputs)
    keys = op.key_positions
    for k, var in enumerate(inputs):
        em.emit(f"i{k} = 0")
        em.emit(f"n{k} = len({var})")
    guard = " and ".join(f"i{k} < n{k}" for k in range(n))
    with em.block(f"while {guard}:"):
        if gen.traced:
            em.emit(
                f"_probe.instr({n * (costs.LOOP_ITER_INSTRUCTIONS + costs.PREDICATE_INSTRUCTIONS)})"
            )
        for k, var in enumerate(inputs):
            em.emit(f"k{k} = {var}[i{k}][{keys[k]}]")
        em.emit("_kmax = k0")
        for k in range(1, n):
            with em.block(f"if k{k} > _kmax:"):
                em.emit(f"_kmax = k{k}")
        em.emit("_advanced = False")
        for k in range(n):
            with em.block(f"if k{k} < _kmax:"):
                em.emit(f"i{k} += 1")
                em.emit("_advanced = True")
        with em.block("if _advanced:"):
            em.emit("continue")
        # All keys equal: find each input's group end, then emit the
        # cross product of the groups with one loop level per input —
        # the loop-blocking layout of Section V-B.
        for k, var in enumerate(inputs):
            em.emit(f"e{k} = i{k} + 1")
            with em.block(
                f"while e{k} < n{k} and {var}[e{k}][{keys[k]}] == _kmax:"
            ):
                em.emit(f"e{k} += 1")
        _emit_group_product(em, gen, op, inputs, 0, "")
        for k in range(n):
            em.emit(f"i{k} = e{k}")


def _emit_group_product(
    em: Emitter,
    gen: GenContext,
    op: MultiwayJoin,
    inputs: list[str],
    depth: int,
    prefix: str,
) -> None:
    n = len(inputs)
    var = inputs[depth]
    index = f"a{depth}"
    with em.block(f"for {index} in range(i{depth}, e{depth}):"):
        if depth == n - 1:
            row = f"{prefix} + {var}[{index}]" if prefix else f"{var}[{index}]"
            em.emit(f"append({row})")
            if gen.traced:
                em.emit("_wn += 1")
                em.emit(f"_probe.instr({costs.LOOP_ITER_INSTRUCTIONS})")
        else:
            combined = f"r{depth}"
            if prefix:
                em.emit(f"{combined} = {prefix} + {var}[{index}]")
            else:
                em.emit(f"{combined} = {var}[{index}]")
            _emit_group_product(em, gen, op, inputs, depth + 1, combined)


# -- trace helpers ------------------------------------------------------------------------


def _row_bytes_left(op: Join) -> int:
    return _input_bytes(op, left=True)


def _row_bytes_right(op: Join) -> int:
    return _input_bytes(op, left=False)


def _input_bytes(op: Join, left: bool) -> int:
    """Approximate staged row width (8 bytes per slot).

    The join output layout is left ++ right; without child layouts at
    hand we split it evenly, which only affects trace addresses, not
    results.
    """
    total = len(op.output_layout)
    half = max(total // 2, 1)
    return (half if left else max(total - half, 1)) * 8


def _emit_join_trace_init(em: Emitter, op: Join) -> None:
    em.emit("_probe = ctx.probe")
    em.emit("_lb = ctx.probe.space.alloc(1 << 24)")
    em.emit("_rb = ctx.probe.space.alloc(1 << 24)")
    em.emit("_ob = ctx.probe.space.alloc(1 << 26)")
    em.emit("_wn = 0")


def _emit_output_trace(em: Emitter, row_bytes: int) -> None:
    """Charge the result-generation instructions (no load: the paper
    does not materialise query output)."""
    em.emit("_wn += 1")
    em.emit(
        f"_probe.instr({costs.LOOP_ITER_INSTRUCTIONS + costs.COPY_WORD_INSTRUCTIONS * 4})"
    )


def _emit_partition_sort_trace(em: Emitter, op: Join) -> None:
    lrb = _row_bytes_left(op)
    with em.block("if len(left) > 1:"):
        em.emit(
            f"_probe.instr(int(len(left) * _log2(len(left))) * "
            f"{costs.SORT_STEP_INSTRUCTIONS})"
        )
    with em.block("if len(right) > 1:"):
        em.emit(
            f"_probe.instr(int(len(right) * _log2(len(right))) * "
            f"{costs.SORT_STEP_INSTRUCTIONS})"
        )
