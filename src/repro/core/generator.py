"""The code generator — the paper's Figure 3 algorithm.

Traverses the optimizer's topologically sorted operator-descriptor list,
retrieves the code template for each operator's algorithm, instantiates
it with the descriptor's parameters, and emits one Python function per
staging step and per operator.  A composing function (``run_query``)
calls them in order and returns the result — "the last bit of code
generation is to traverse O and generate a main (composing) function
that calls all evaluation functions in the correct order".

The output is a single self-contained source module, mirroring the
paper's "insert all generated functions into a new C source file".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.emitter import Emitter, GenContext, OPT_O2
from repro.core.templates.aggregate import emit_aggregate
from repro.core.templates.final import emit_limit, emit_project, emit_sort
from repro.core.templates.join import emit_join, emit_multiway_join
from repro.core.templates.staging import emit_restage, emit_scan_stage
from repro.errors import CodegenError
from repro.plan.descriptors import (
    AGG_MAP,
    Aggregate,
    Join,
    Limit,
    MultiwayJoin,
    PhysicalPlan,
    Project,
    Restage,
    ScanStage,
    Sort,
)


@dataclass
class GeneratedQuery:
    """A generated source module, ready for compilation."""

    name: str
    source: str
    entry_name: str
    opt_level: str
    traced: bool
    function_names: dict[int, str] = field(default_factory=dict)

    @property
    def source_size(self) -> int:
        return len(self.source.encode("utf-8"))


class CodeGenerator:
    """Instantiates templates for a physical plan (Figure 3)."""

    def generate(
        self,
        plan: PhysicalPlan,
        name: str = "query",
        opt_level: str = OPT_O2,
        traced: bool = False,
    ) -> GeneratedQuery:
        plan.validate()
        gen = GenContext(opt_level=opt_level, traced=traced)
        body = Emitter()
        function_names: dict[int, str] = {}
        uses_map_aggregate = False

        for operator in plan.operators:
            func_name = _function_name(operator)
            function_names[operator.op_id] = func_name
            if isinstance(operator, ScanStage):
                emit_scan_stage(body, gen, operator, func_name)
            elif isinstance(operator, Restage):
                emit_restage(body, gen, operator, func_name)
            elif isinstance(operator, Join):
                emit_join(body, gen, operator, func_name)
            elif isinstance(operator, MultiwayJoin):
                emit_multiway_join(body, gen, operator, func_name)
            elif isinstance(operator, Aggregate):
                input_layout = plan.op(operator.input_op).output_layout
                emit_aggregate(body, gen, operator, func_name, input_layout)
                if operator.algorithm == AGG_MAP:
                    uses_map_aggregate = True
            elif isinstance(operator, Project):
                input_layout = plan.op(operator.input_op).output_layout
                emit_project(body, gen, operator, func_name, input_layout)
            elif isinstance(operator, Sort):
                emit_sort(body, gen, operator, func_name)
            elif isinstance(operator, Limit):
                emit_limit(body, gen, operator, func_name)
            else:
                raise CodegenError(
                    f"no template for operator {type(operator).__name__}"
                )

        self._emit_composer(body, plan, function_names)
        header = self._header(plan, name, gen, uses_map_aggregate)
        # Module metadata trailer: process-pool workers re-import this
        # file from the compiler's work directory and check these before
        # running a task, so a mismatched or stale module fails loudly
        # instead of computing wrong rows.
        trailer = (
            "\n"
            f"HIQUE_QUERY = {name!r}\n"
            f"HIQUE_OPT_LEVEL = {opt_level!r}\n"
            f"HIQUE_TRACED = {traced!r}\n"
        )
        source = header + body.source() + trailer
        return GeneratedQuery(
            name=name,
            source=source,
            entry_name="run_query",
            opt_level=opt_level,
            traced=traced,
            function_names=function_names,
        )

    # -- composition --------------------------------------------------------------
    @staticmethod
    def _emit_composer(
        em: Emitter, plan: PhysicalPlan, function_names: dict[int, str]
    ) -> None:
        with em.block("def run_query(ctx):"):
            for operator in plan.operators:
                func = function_names[operator.op_id]
                args = ", ".join(
                    f"r{input_id}" for input_id in operator.inputs
                )
                if args:
                    em.emit(f"r{operator.op_id} = {func}(ctx, {args})")
                else:
                    em.emit(f"r{operator.op_id} = {func}(ctx)")
            em.emit(f"return r{plan.root.op_id}")

    # -- module header -----------------------------------------------------------------
    @staticmethod
    def _header(
        plan: PhysicalPlan,
        name: str,
        gen: GenContext,
        uses_map_aggregate: bool,
    ) -> str:
        lines = [
            '"""Query-specific code generated by HIQUE (repro).',
            "",
            f"Query: {name}",
            f"Optimization level: {gen.opt_level}"
            + (" (traced)" if gen.traced else ""),
            "",
            "Plan:",
        ]
        lines.extend("    " + line for line in plan.explain().split("\n"))
        lines.append('"""')
        lines.append("")
        lines.append("import struct as _struct")
        lines.append("from operator import itemgetter as _itemgetter")
        lines.append("")
        lines.append("from repro.core import runtime as _rt")
        if gen.traced:
            lines.append("from math import log2 as _log2")
            lines.append(
                "from repro.memsim.probe import AddressSpace as _AS"
            )
        if uses_map_aggregate:
            lines.append(
                "from repro.errors import MapDirectoryOverflow as "
                "_MapOverflow"
            )
        lines.append("")
        lines.append('_SP = b" "')
        if gen.traced:
            lines.append("_page_addr = _AS.page_addr")
        lines.extend(gen.preamble_lines())
        lines.append("")
        lines.append("")
        return "\n".join(lines)


def _function_name(operator) -> str:
    prefixes = {
        ScanStage: "stage",
        Restage: "restage",
        Join: "join",
        MultiwayJoin: "team_join",
        Aggregate: "aggregate",
        Project: "project",
        Sort: "order",
        Limit: "limit",
    }
    prefix = prefixes.get(type(operator))
    if prefix is None:  # pragma: no cover - exhaustive above
        raise CodegenError(f"unnamed operator {type(operator).__name__}")
    return f"{prefix}_o{operator.op_id}"
