"""Source emission utilities for the code generator.

:class:`Emitter` accumulates indented Python lines; :class:`GenContext`
carries everything template instantiation needs: the optimization level,
whether probe instrumentation is woven in, and the registry of
``struct`` unpacker constants shared across templates.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CodegenError
from repro.storage.types import DataType

#: Generator optimization levels (the gcc -O0 / -O2 analogue).
OPT_O0 = "O0"
OPT_O2 = "O2"

INDENT = "    "


class Emitter:
    """An indentation-aware line buffer."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._level = 0

    def emit(self, text: str = "") -> None:
        """Append one line (or several, newline separated)."""
        if not text:
            self._lines.append("")
            return
        prefix = INDENT * self._level
        for line in text.split("\n"):
            self._lines.append(prefix + line if line else "")

    @contextmanager
    def block(self, header: str) -> Iterator[None]:
        """Emit ``header`` and indent the body one level."""
        self.emit(header)
        self._level += 1
        try:
            yield
        finally:
            self._level -= 1

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


@dataclass
class GenContext:
    """Shared state of one code-generation run."""

    opt_level: str = OPT_O2
    traced: bool = False
    #: struct format → module-level unpacker constant name.
    unpackers: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.opt_level not in (OPT_O0, OPT_O2):
            raise CodegenError(f"unknown optimization level {self.opt_level!r}")

    @property
    def optimized(self) -> bool:
        return self.opt_level == OPT_O2

    # -- unpacker registry -----------------------------------------------------
    def unpacker(self, struct_char: str) -> str:
        """Name of the module-level unpack_from bound to this format."""
        name = self.unpackers.get(struct_char)
        if name is None:
            name = f"_u_{struct_char.replace(' ', '')}"
            self.unpackers[struct_char] = name
        return name

    def field_decode(
        self, dtype: DataType, data_var: str, offset_expr: str
    ) -> str:
        """Source reading one field straight out of a page buffer.

        This is the Python analogue of the paper's pointer cast: a
        precompiled ``struct.Struct.unpack_from`` applied at a constant
        offset, with no generic accessor in between.
        """
        unpack = self.unpacker(dtype.struct_char)
        raw = f"{unpack}({data_var}, {offset_expr})[0]"
        if dtype.is_string:
            return f"{raw}.rstrip(_SP).decode()"
        return raw

    def preamble_lines(self) -> list[str]:
        """Module-level constant definitions for registered unpackers."""
        lines = []
        for struct_char, name in sorted(self.unpackers.items()):
            lines.append(
                f'{name} = _struct.Struct("<{struct_char}").unpack_from'
            )
        return lines
