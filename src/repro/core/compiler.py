"""Compilation and dynamic loading of generated query code.

The paper writes the generated C file, invokes gcc to produce a shared
library, and ``dlopen``s it.  The Python analogue: the generated source
is written to a real ``.py`` file (so tracebacks, inspection and the
Table III file-size measurements work), compiled with :func:`compile`,
and executed into a fresh module namespace whose entry function the
executor calls.  ``marshal`` of the code object stands in for the shared
library when reporting compiled sizes.
"""

from __future__ import annotations

import atexit
import marshal
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.generator import GeneratedQuery
from repro.errors import CodegenError


@dataclass
class CompiledQuery:
    """A generated query after compilation and dynamic loading."""

    name: str
    source: str
    source_path: str
    entry: Callable[[Any], list[tuple]]
    namespace: dict[str, Any]
    opt_level: str
    traced: bool
    compile_seconds: float
    source_bytes: int
    compiled_bytes: int
    #: Distinct module name the source was executed under.  Together
    #: with ``source_path`` this is the *module spec* process-pool
    #: workers use to re-import the generated code in their own
    #: interpreter (the analogue of a second ``dlopen`` of the shared
    #: library the paper's compiler produced).
    module_name: str = ""

    def module_spec(self) -> tuple[str, str]:
        """``(module_name, source_path)`` for out-of-process reloads.

        The path stays valid for the lifetime of the owning engine: the
        compiler's work directory is only removed by ``close()``/atexit,
        so a worker process can re-read and execute the exact source
        this process compiled.
        """
        return self.module_name, self.source_path


class QueryCompiler:
    """Compiles generated sources, caching nothing itself (the engine
    keeps the prepared-query cache, as the paper suggests systems do for
    "frequently or recently issued queries")."""

    def __init__(self, workdir: str | None = None):
        #: Only directories this compiler created itself are deleted on
        #: close — a caller-supplied workdir is the caller's to manage.
        self._owns_workdir = workdir is None
        if workdir is None:
            workdir = tempfile.mkdtemp(prefix="hique_gen_")
            # The atexit hook holds only the path (not ``self``), so the
            # registration neither keeps the compiler alive nor breaks
            # when close() already removed the directory.
            atexit.register(shutil.rmtree, workdir, ignore_errors=True)
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self._counter = 0
        # Concurrent sessions may compile at once (e.g. the engine's
        # stale-statistics fallback path); the counter hands each
        # compilation a distinct module name and file.
        self._counter_lock = threading.Lock()

    def close(self) -> None:
        """Delete the generated-source directory, if this compiler owns it.

        Idempotent; the engine calls it from :meth:`HiqueEngine.close`
        and an ``atexit`` hook covers engines that are never closed.
        """
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "QueryCompiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def compile(self, generated: GeneratedQuery) -> CompiledQuery:
        """Write, compile and load one generated module."""
        with self._counter_lock:
            self._counter += 1
            serial = self._counter
        os.makedirs(self.workdir, exist_ok=True)
        file_name = f"{_sanitize(generated.name)}_{serial}.py"
        source_path = os.path.join(self.workdir, file_name)
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(generated.source)

        started = time.perf_counter()
        try:
            code = compile(generated.source, source_path, "exec")
        except SyntaxError as exc:  # a generator bug, not a user error
            raise CodegenError(
                f"generated code does not compile: {exc}\n"
                f"--- generated source ---\n{generated.source}"
            ) from exc
        module_name = f"hique_generated_{serial}"
        namespace: dict[str, Any] = {
            "__name__": module_name,
            "__file__": source_path,
        }
        exec(code, namespace)  # noqa: S102 - this *is* the dynamic linker
        elapsed = time.perf_counter() - started

        entry = namespace.get(generated.entry_name)
        if not callable(entry):
            raise CodegenError(
                f"generated module lacks entry point "
                f"{generated.entry_name!r}"
            )
        return CompiledQuery(
            name=generated.name,
            source=generated.source,
            source_path=source_path,
            entry=entry,
            namespace=namespace,
            opt_level=generated.opt_level,
            traced=generated.traced,
            compile_seconds=elapsed,
            source_bytes=generated.source_size,
            compiled_bytes=len(marshal.dumps(code)),
            module_name=module_name,
        )


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
