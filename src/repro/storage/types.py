"""Column data types and the fixed-length tuple codec.

HIQUE stores tuples in NSM pages as fixed-length byte arrays so that the
generated code can address any field of any tuple with plain pointer
arithmetic (``tuple_base + field_offset``).  This module defines the type
system and the ``struct``-based codec that gives the same property in
Python: every type has a fixed on-page size, a ``struct`` format
character, and explicit encode/decode hooks between Python values and
their stored representation.

Supported types mirror what the paper's workloads need:

* ``INT`` — 64-bit signed integer (join keys, counts).
* ``DOUBLE`` — IEEE-754 double (prices, discounts; stands in for SQL
  ``DECIMAL`` exactly as most engines do internally).
* ``CHAR(n)`` / ``VARCHAR(n)`` — fixed slot of ``n`` bytes, space padded.
  ``VARCHAR`` differs only in trailing-space semantics on decode.
* ``DATE`` — 32-bit proleptic-Gregorian ordinal (days); compares like the
  calendar date, which is all TPC-H predicates need.
* ``BOOL`` — one byte.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError

#: Unix-ish epoch used for DATE storage; any fixed origin works because
#: only comparisons and arithmetic on day counts are performed.
_DATE_EPOCH = datetime.date(1970, 1, 1).toordinal()


@dataclass(frozen=True)
class DataType:
    """A column data type with a fixed on-page representation.

    Attributes:
        name: SQL-ish display name, e.g. ``"INT"`` or ``"CHAR(10)"``.
        code: short family code (``"int"``, ``"double"``, ``"char"``,
            ``"varchar"``, ``"date"``, ``"bool"``) used by the planner and
            the code generator to pick type-specialised code paths.
        size: number of bytes the value occupies inside a tuple.
        struct_char: ``struct`` format for the stored representation.
    """

    name: str
    code: str
    size: int
    struct_char: str

    # -- value conversion -------------------------------------------------
    def to_storage(self, value: Any) -> Any:
        """Convert a Python value to the representation ``struct`` packs."""
        if self.code in ("char", "varchar"):
            if isinstance(value, bytes):
                raw = value
            else:
                raw = str(value).encode("utf-8")
            if len(raw) > self.size:
                raise StorageError(
                    f"value of length {len(raw)} does not fit {self.name}"
                )
            return raw.ljust(self.size, b" ")
        if self.code == "date":
            if isinstance(value, datetime.date):
                return value.toordinal() - _DATE_EPOCH
            return int(value)
        if self.code == "int":
            return int(value)
        if self.code == "double":
            return float(value)
        if self.code == "bool":
            return bool(value)
        raise StorageError(f"unknown type family {self.code!r}")

    def from_storage(self, value: Any) -> Any:
        """Convert a value unpacked by ``struct`` to its Python form."""
        if self.code in ("char", "varchar"):
            return value.rstrip(b" ").decode("utf-8")
        return value

    # -- classification helpers -------------------------------------------
    @property
    def is_numeric(self) -> bool:
        return self.code in ("int", "double", "date", "bool")

    @property
    def is_string(self) -> bool:
        return self.code in ("char", "varchar")

    def comparable_with(self, other: "DataType") -> bool:
        """Whether predicates may compare values of ``self`` and ``other``."""
        if self.is_string and other.is_string:
            return True
        if self.code == "date" or other.code == "date":
            return {self.code, other.code} <= {"date", "int"}
        return self.is_numeric and other.is_numeric

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.name


# -- public constructors ---------------------------------------------------

INT = DataType("INT", "int", 8, "q")
DOUBLE = DataType("DOUBLE", "double", 8, "d")
DATE = DataType("DATE", "date", 4, "i")
BOOL = DataType("BOOL", "bool", 1, "?")


def char(n: int) -> DataType:
    """A fixed-length ``CHAR(n)`` column type."""
    if n <= 0:
        raise StorageError("CHAR length must be positive")
    return DataType(f"CHAR({n})", "char", n, f"{n}s")


def varchar(n: int) -> DataType:
    """A ``VARCHAR(n)`` column type stored in a fixed ``n``-byte slot.

    The paper's storage layer (like many NSM teaching engines) stores all
    fields at fixed offsets so that generated code can use direct
    addressing; VARCHAR therefore reserves its maximum width.
    """
    if n <= 0:
        raise StorageError("VARCHAR length must be positive")
    return DataType(f"VARCHAR({n})", "varchar", n, f"{n}s")


def date_to_ordinal(value: datetime.date | str) -> int:
    """Days-since-epoch for a date or ISO ``YYYY-MM-DD`` string.

    This is the integer form DATE columns hold on-page, and the form date
    literals take inside generated code (so predicates compare plain ints).
    """
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return value.toordinal() - _DATE_EPOCH


def ordinal_to_date(value: int) -> datetime.date:
    """Inverse of :func:`date_to_ordinal`."""
    return datetime.date.fromordinal(value + _DATE_EPOCH)


def type_from_sql(name: str, length: int | None = None) -> DataType:
    """Resolve a SQL type name (as produced by the parser) to a DataType."""
    upper = name.upper()
    if upper in ("INT", "INTEGER", "BIGINT"):
        return INT
    if upper in ("DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC"):
        return DOUBLE
    if upper == "DATE":
        return DATE
    if upper in ("BOOL", "BOOLEAN"):
        return BOOL
    if upper == "CHAR":
        return char(length if length is not None else 1)
    if upper == "VARCHAR":
        if length is None:
            raise StorageError("VARCHAR requires a length")
        return varchar(length)
    raise StorageError(f"unsupported SQL type {name!r}")
