"""Tables: schema + heap file + buffer-mediated access paths.

A :class:`Table` couples a schema with a heap file and exposes the three
access paths the engines use:

* ``append`` / ``load_rows`` for building tables;
* ``scan_rows`` for decoded row iteration (iterator engines, tests);
* ``pages`` / ``page_buffers`` for page-granular access, which is what
  the HIQUE-generated code and the hard-coded baselines use — they walk
  raw page bytes with per-field offsets, exactly like the C templates in
  the paper.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import HeapFile, MemoryFile
from repro.storage.page import Page
from repro.storage.schema import Schema


class Table:
    """A stored relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        file: HeapFile | None = None,
        buffer: BufferManager | None = None,
    ):
        self.name = name
        self.schema = schema.qualify(name) if _unqualified(schema) else schema
        self.file = file if file is not None else MemoryFile()
        self.buffer = buffer if buffer is not None else BufferManager()
        self._row_count = 0
        self._tail_page_no: int | None = None
        #: Serializes appends/truncation; reads are lock-free (they go
        #: through the latched buffer manager and snapshot page counts).
        self._write_lock = threading.Lock()
        # Rows may pre-exist in the file (e.g. reopened DiskFile).
        if self.file.num_pages:
            self._row_count = sum(
                p.num_tuples for p in self.pages()
            )
            self._tail_page_no = self.file.num_pages - 1

    # -- building --------------------------------------------------------------
    def append(self, row: Sequence[Any]) -> None:
        """Append one Python row."""
        encoded = self.schema.encode(row)
        with self._write_lock:
            page = self._tail_page()
            if page.is_full:
                page = self._grow()
            page.insert(encoded)
            assert self._tail_page_no is not None
            self.buffer.unpin(self.file, self._tail_page_no, dirty=True)
            self._row_count += 1

    def load_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-append rows; returns the number inserted.

        Packs pages directly (one pin per page, not per row), which is the
        path the data generators use.
        """
        count = 0
        encode = self.schema.encode
        page: Page | None = None
        page_no: int | None = None
        with self._write_lock:
            for row in rows:
                if page is None or page.is_full:
                    if page is not None:
                        self.buffer.unpin(self.file, page_no, dirty=True)
                    page_no, page = self.buffer.new_page(
                        self.file, self.schema
                    )
                    self._tail_page_no = page_no
                page.insert(encode(row))
                count += 1
            if page is not None:
                self.buffer.unpin(self.file, page_no, dirty=True)
            self._row_count += count
        return count

    def _tail_page(self) -> Page:
        if self._tail_page_no is None:
            page_no, page = self.buffer.new_page(self.file, self.schema)
            self._tail_page_no = page_no
            return page
        return self.buffer.get_page(
            self.file, self._tail_page_no, self.schema
        )

    def _grow(self) -> Page:
        assert self._tail_page_no is not None
        self.buffer.unpin(self.file, self._tail_page_no)
        page_no, page = self.buffer.new_page(self.file, self.schema)
        self._tail_page_no = page_no
        return page

    # -- introspection -----------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._row_count

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    @property
    def tuple_size(self) -> int:
        return self.schema.tuple_size

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Table({self.name!r}, {self._row_count} rows, "
            f"{self.num_pages} pages)"
        )

    # -- access paths -----------------------------------------------------------
    def read_page(self, page_no: int) -> Page:
        """Buffer-mediated unpinned page read (generated-code path)."""
        return self.buffer.scan_page(self.file, page_no, self.schema)

    def pages(
        self, page_lo: int = 0, page_hi: int | None = None
    ) -> Iterator[Page]:
        """Iterate pages through the buffer manager.

        ``page_lo``/``page_hi`` bound the range (half-open), which is
        how morsel-driven workers scan their slice of the table.
        """
        if page_hi is None:
            page_hi = self.file.num_pages
        for page_no in range(page_lo, page_hi):
            yield self.buffer.scan_page(self.file, page_no, self.schema)

    def scan_rows(self) -> Iterator[tuple]:
        """Iterate over all rows decoded into Python tuples."""
        for page in self.pages():
            yield from page.rows()

    def all_rows(self) -> list[tuple]:
        """Materialise the whole table (tests and small inputs only)."""
        return list(self.scan_rows())

    def row_at(self, page_no: int, slot: int) -> tuple:
        """Fetch one row by rid; used by index lookups.

        Unlike the scan paths, the page reference is held across the
        decode, so it stays pinned for the duration of the read.
        """
        with self.buffer.shared(self.file, page_no, self.schema) as page:
            return page.read(slot)

    def truncate(self) -> None:
        """Remove all rows (pages are cleared, not deallocated)."""
        with self._write_lock:
            for page_no in range(self.file.num_pages):
                page = self.buffer.get_page(self.file, page_no, self.schema)
                page.clear()
                self.buffer.unpin(self.file, page_no, dirty=True)
            self._row_count = 0


def _unqualified(schema: Schema) -> bool:
    return all(c.table is None for c in schema.columns)


def table_from_rows(
    name: str,
    schema: Schema,
    rows: Iterable[Sequence[Any]],
    buffer: BufferManager | None = None,
) -> Table:
    """Convenience constructor used pervasively by tests and benchmarks."""
    table = Table(name, schema, buffer=buffer)
    table.load_rows(rows)
    return table


def require_same_arity(table: Table, row: Sequence[Any]) -> None:
    """Explicit arity check helper for user-facing load paths."""
    if len(row) != len(table.schema):
        raise StorageError(
            f"row arity {len(row)} does not match table "
            f"{table.name!r} arity {len(table.schema)}"
        )
