"""Tables: schema + heap file + buffer-mediated access paths.

A :class:`Table` couples a schema with a heap file and exposes the three
access paths the engines use:

* ``append`` / ``load_rows`` for building tables;
* ``scan_rows`` for decoded row iteration (iterator engines, tests);
* ``pages`` / ``page_buffers`` for page-granular access, which is what
  the HIQUE-generated code and the hard-coded baselines use — they walk
  raw page bytes with per-field offsets, exactly like the C templates in
  the paper.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import HeapFile, MemoryFile
from repro.storage.page import Page
from repro.storage.schema import Schema


class Table:
    """A stored relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        file: HeapFile | None = None,
        buffer: BufferManager | None = None,
    ):
        self.name = name
        self.schema = schema.qualify(name) if _unqualified(schema) else schema
        self.file = file if file is not None else MemoryFile()
        self.buffer = buffer if buffer is not None else BufferManager()
        self._row_count = 0
        self._tail_page_no: int | None = None
        #: Monotonic mutation epoch.  Every mutation (append, bulk load,
        #: update, delete, truncate) advances it, so any cache keyed on
        #: ``(table, version)`` is coherent without tracking what changed.
        self.version = 0
        #: column name → B+-tree over that column (rid values).  Rebuilt
        #: wholesale after mutations — page rewrites shift rids.
        self._indexes: dict[str, Any] = {}
        #: Serializes appends/truncation; reads are lock-free (they go
        #: through the latched buffer manager and snapshot page counts).
        self._write_lock = threading.Lock()
        # Rows may pre-exist in the file (e.g. reopened DiskFile).
        if self.file.num_pages:
            self._row_count = sum(
                p.num_tuples for p in self.pages()
            )
            self._tail_page_no = self.file.num_pages - 1

    # -- building --------------------------------------------------------------
    def append(self, row: Sequence[Any]) -> None:
        """Append one Python row."""
        self.append_rows([row])

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows at the tail as ONE mutation: a single version bump.

        Unlike :meth:`load_rows` this fills the current tail page before
        growing, so small statements don't each open a fresh page; the
        whole batch advances the epoch once, matching the
        statement-granular invalidation the caches key on.
        """
        count = 0
        with self._write_lock:
            for row in rows:
                encoded = self.schema.encode(row)
                page = self._tail_page()
                if page.is_full:
                    page = self._grow()
                slot = page.insert(encoded)
                assert self._tail_page_no is not None
                self.buffer.unpin(self.file, self._tail_page_no, dirty=True)
                self._row_count += 1
                if self._indexes:
                    rid = (self._tail_page_no, slot)
                    for column, index in self._indexes.items():
                        position = self.schema.index_of(column)
                        index.insert(row[position], rid)
                count += 1
            if count:
                self.version += 1
        return count

    def load_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-append rows; returns the number inserted.

        Packs pages directly (one pin per page, not per row), which is the
        path the data generators use.
        """
        count = 0
        encode = self.schema.encode
        page: Page | None = None
        page_no: int | None = None
        with self._write_lock:
            for row in rows:
                if page is None or page.is_full:
                    if page is not None:
                        self.buffer.unpin(self.file, page_no, dirty=True)
                    page_no, page = self.buffer.new_page(
                        self.file, self.schema
                    )
                    self._tail_page_no = page_no
                page.insert(encode(row))
                count += 1
            if page is not None:
                self.buffer.unpin(self.file, page_no, dirty=True)
            self._row_count += count
            self.version += 1
            self._rebuild_indexes()
        return count

    def _tail_page(self) -> Page:
        if self._tail_page_no is None:
            page_no, page = self.buffer.new_page(self.file, self.schema)
            self._tail_page_no = page_no
            return page
        return self.buffer.get_page(
            self.file, self._tail_page_no, self.schema
        )

    def _grow(self) -> Page:
        assert self._tail_page_no is not None
        self.buffer.unpin(self.file, self._tail_page_no)
        page_no, page = self.buffer.new_page(self.file, self.schema)
        self._tail_page_no = page_no
        return page

    # -- introspection -----------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._row_count

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    @property
    def tuple_size(self) -> int:
        return self.schema.tuple_size

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Table({self.name!r}, {self._row_count} rows, "
            f"{self.num_pages} pages)"
        )

    # -- access paths -----------------------------------------------------------
    def read_page(self, page_no: int) -> Page:
        """Buffer-mediated unpinned page read (generated-code path)."""
        return self.buffer.scan_page(self.file, page_no, self.schema)

    def pages(
        self, page_lo: int = 0, page_hi: int | None = None
    ) -> Iterator[Page]:
        """Iterate pages through the buffer manager.

        ``page_lo``/``page_hi`` bound the range (half-open), which is
        how morsel-driven workers scan their slice of the table.
        """
        if page_hi is None:
            page_hi = self.file.num_pages
        for page_no in range(page_lo, page_hi):
            yield self.buffer.scan_page(self.file, page_no, self.schema)

    def scan_rows(self) -> Iterator[tuple]:
        """Iterate over all rows decoded into Python tuples."""
        for page in self.pages():
            yield from page.rows()

    def all_rows(self) -> list[tuple]:
        """Materialise the whole table (tests and small inputs only)."""
        return list(self.scan_rows())

    def row_at(self, page_no: int, slot: int) -> tuple:
        """Fetch one row by rid; used by index lookups.

        Unlike the scan paths, the page reference is held across the
        decode, so it stays pinned for the duration of the read.
        """
        with self.buffer.shared(self.file, page_no, self.schema) as page:
            return page.read(slot)

    def truncate(self) -> None:
        """Remove all rows (pages are cleared, not deallocated)."""
        with self._write_lock:
            for page_no in range(self.file.num_pages):
                page = self.buffer.get_page(self.file, page_no, self.schema)
                page.clear()
                self.buffer.unpin(self.file, page_no, dirty=True)
            self._row_count = 0
            self.version += 1
            self._rebuild_indexes()

    # -- DML -----------------------------------------------------------------
    def update_rows(
        self,
        predicate: Callable[[tuple], bool],
        updater: Callable[[tuple], Sequence[Any]],
    ) -> int:
        """Rewrite matching rows in place; returns the match count.

        Each page is rewritten independently: its rows are decoded, the
        updater applied where the predicate matches, and the page
        repacked.  Row counts per page never change, so every rewrite
        fits.  New rows are fully encoded *before* the page is cleared,
        so an encode failure (value does not fit the column) leaves the
        page untouched.
        """
        changed = 0
        rewrote = False
        with self._write_lock:
            try:
                for page_no in range(self.file.num_pages):
                    page = self.buffer.get_page(
                        self.file, page_no, self.schema
                    )
                    dirty = False
                    try:
                        replacement: list[bytes] = []
                        for row in page.rows():
                            if predicate(row):
                                row = tuple(updater(row))
                                changed += 1
                                dirty = True
                            replacement.append(self.schema.encode(row))
                        if dirty:
                            page.clear()
                            for encoded in replacement:
                                page.insert(encoded)
                            rewrote = True
                    finally:
                        self.buffer.unpin(self.file, page_no, dirty=dirty)
            finally:
                # Bump even when a later page failed to encode: earlier
                # pages were already rewritten, so caches keyed on the
                # old version must not survive.
                if rewrote:
                    self.version += 1
                    self._rebuild_indexes()
        return changed

    def delete_rows(self, predicate: Callable[[tuple], bool]) -> int:
        """Remove matching rows; returns the number removed.

        Survivors are repacked front to front across the existing pages
        (trailing pages are cleared, not deallocated), so page numbers
        stay dense for the morsel-driven scans.
        """
        with self._write_lock:
            survivors: list[tuple] = []
            removed = 0
            for page in self.pages():
                for row in page.rows():
                    if predicate(row):
                        removed += 1
                    else:
                        survivors.append(row)
            if removed:
                self._repack(survivors)
                self.version += 1
                self._rebuild_indexes()
        return removed

    def _repack(self, rows: list[tuple]) -> None:
        """Rewrite the whole heap with ``rows``; caller holds the lock."""
        encode = self.schema.encode
        cursor = 0
        last_used: int | None = None
        for page_no in range(self.file.num_pages):
            page = self.buffer.get_page(self.file, page_no, self.schema)
            page.clear()
            while cursor < len(rows) and not page.is_full:
                page.insert(encode(rows[cursor]))
                cursor += 1
            if page.num_tuples:
                last_used = page_no
            self.buffer.unpin(self.file, page_no, dirty=True)
        self._row_count = len(rows)
        if last_used is not None:
            self._tail_page_no = last_used

    # -- secondary indexes ----------------------------------------------------
    def create_index(self, column: str) -> Any:
        """Build (or return) a B+-tree index over ``column``."""
        from repro.storage.btree import build_index

        key = column.lower()
        self.schema.index_of(key)  # raises CatalogError on unknown column
        with self._write_lock:
            if key not in self._indexes:
                self._indexes[key] = build_index(self, key)
            return self._indexes[key]

    def index_on(self, column: str) -> Any | None:
        """The registered index over ``column``, or None."""
        return self._indexes.get(column.lower())

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def _rebuild_indexes(self) -> None:
        """Rebuild every registered index; caller holds the write lock.

        Updates and deletes rewrite pages, which shifts rids, so the
        whole tree is rebuilt rather than patched.
        """
        if not self._indexes:
            return
        from repro.storage.btree import build_index

        for column in list(self._indexes):
            self._indexes[column] = build_index(self, column)


def _unqualified(schema: Schema) -> bool:
    return all(c.table is None for c in schema.columns)


def table_from_rows(
    name: str,
    schema: Schema,
    rows: Iterable[Sequence[Any]],
    buffer: BufferManager | None = None,
) -> Table:
    """Convenience constructor used pervasively by tests and benchmarks."""
    table = Table(name, schema, buffer=buffer)
    table.load_rows(rows)
    return table


def require_same_arity(table: Table, row: Sequence[Any]) -> None:
    """Explicit arity check helper for user-facing load paths."""
    if len(row) != len(table.schema):
        raise StorageError(
            f"row arity {len(row)} does not match table "
            f"{table.name!r} arity {len(table.schema)}"
        )
