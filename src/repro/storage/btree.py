"""Fractal B+-tree index.

The paper uses "memory-efficient indexes, in the form of fractal
B+-trees, with each physical page divided in four tree nodes of 1024
bytes each" (Section IV, citing Chen et al., SIGMOD 2002).  The fractal
layout packs several small nodes into one disk page so that a page fetch
brings a whole subtree slice into cache.

This implementation keeps that node-size discipline:

* nodes have a byte budget of ``NODE_SIZE`` (1024) bytes and their
  fan-out is derived from it exactly as it would be on disk;
* nodes are allocated in groups of ``NODES_PER_PAGE`` (4) through a
  :class:`NodeAllocator`, so node ids map onto (page, quarter) slots and
  siblings tend to be co-located — the fractal property;
* keys are Python-comparable scalars; values are record ids
  ``(page_no, slot)``.

The benchmark queries in the paper are scan driven, so the index is not
on the critical path of the reproduced figures, but it completes the
storage substrate (point lookups, range scans, ordered iteration) and is
fully unit/property tested.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import StorageError

#: Byte budget of a tree node (quarter of a physical 4096-byte page).
NODE_SIZE = 1024

#: Nodes co-located per physical page.
NODES_PER_PAGE = 4

#: Assumed encoded widths used to derive fan-out from the byte budget:
#: 8-byte keys, 8-byte child pointers, 8-byte rids, 16-byte node header.
_KEY_BYTES = 8
_PTR_BYTES = 8
_HEADER_BYTES = 16

#: Max children of an internal node: header + n*ptr + (n-1)*key <= NODE_SIZE.
INTERNAL_FANOUT = (NODE_SIZE - _HEADER_BYTES + _KEY_BYTES) // (
    _KEY_BYTES + _PTR_BYTES
)

#: Max entries of a leaf node: header + n*(key + rid) <= NODE_SIZE.
LEAF_CAPACITY = (NODE_SIZE - _HEADER_BYTES) // (_KEY_BYTES + _PTR_BYTES)


class NodeAllocator:
    """Allocates node ids grouped four-to-a-page (the fractal layout)."""

    def __init__(self) -> None:
        self._next_id = 0

    def allocate(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    @property
    def num_nodes(self) -> int:
        return self._next_id

    @property
    def num_pages(self) -> int:
        """Physical pages consumed by the allocated nodes."""
        return -(-self._next_id // NODES_PER_PAGE)

    @staticmethod
    def page_of(node_id: int) -> int:
        return node_id // NODES_PER_PAGE

    @staticmethod
    def quarter_of(node_id: int) -> int:
        return node_id % NODES_PER_PAGE


class _Node:
    __slots__ = ("node_id", "keys", "is_leaf")

    def __init__(self, node_id: int, is_leaf: bool):
        self.node_id = node_id
        self.keys: list[Any] = []
        self.is_leaf = is_leaf


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self, node_id: int):
        super().__init__(node_id, is_leaf=True)
        self.values: list[list[tuple[int, int]]] = []
        self.next_leaf: "_Leaf | None" = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, node_id: int):
        super().__init__(node_id, is_leaf=False)
        self.children: list[_Node] = []


class BPlusTree:
    """A B+-tree over comparable keys mapping to record ids.

    Duplicate keys are allowed (secondary-index semantics): each leaf
    entry holds the list of rids sharing the key.
    """

    def __init__(
        self,
        leaf_capacity: int = LEAF_CAPACITY,
        internal_fanout: int = INTERNAL_FANOUT,
    ):
        if leaf_capacity < 2 or internal_fanout < 3:
            raise StorageError("degenerate B+-tree geometry")
        self.leaf_capacity = leaf_capacity
        self.internal_fanout = internal_fanout
        self.allocator = NodeAllocator()
        self._root: _Node = _Leaf(self.allocator.allocate())
        self._first_leaf: _Leaf = self._root  # type: ignore[assignment]
        self._num_keys = 0
        self._num_entries = 0
        self.height = 1

    # -- queries ---------------------------------------------------------------
    def search(self, key: Any) -> list[tuple[int, int]]:
        """All rids stored under ``key`` (empty list when absent)."""
        leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(
        self, low: Any = None, high: Any = None
    ) -> Iterator[tuple[Any, tuple[int, int]]]:
        """Yield ``(key, rid)`` pairs with ``low <= key <= high`` in order.

        ``None`` bounds are open.
        """
        leaf: _Leaf | None
        if low is None:
            leaf = self._first_leaf
            idx = 0
        else:
            leaf = self._descend(low)
            idx = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None and key > high:
                    return
                for rid in leaf.values[idx]:
                    yield key, rid
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def items(self) -> Iterator[tuple[Any, tuple[int, int]]]:
        """Full ordered iteration."""
        return self.range_scan()

    def __len__(self) -> int:
        """Number of (key, rid) entries."""
        return self._num_entries

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return self._num_keys

    @property
    def num_pages(self) -> int:
        """Physical index pages under the fractal 4-nodes-per-page layout."""
        return self.allocator.num_pages

    # -- updates ---------------------------------------------------------------
    def insert(self, key: Any, rid: tuple[int, int]) -> None:
        """Insert one entry; duplicates append to the key's rid list."""
        split = self._insert(self._root, key, rid)
        if split is not None:
            sep_key, right = split
            new_root = _Internal(self.allocator.allocate())
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
            self.height += 1
        self._num_entries += 1

    def bulk_load(self, items: Iterator[tuple[Any, tuple[int, int]]]) -> None:
        """Insert many (key, rid) pairs (need not be sorted)."""
        for key, rid in items:
            self.insert(key, rid)

    # -- internals ---------------------------------------------------------------
    def _descend(self, key: Any) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            internal: _Internal = node  # type: ignore[assignment]
            idx = bisect.bisect_right(internal.keys, key)
            node = internal.children[idx]
        return node  # type: ignore[return-value]

    def _insert(
        self, node: _Node, key: Any, rid: tuple[int, int]
    ) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            return self._insert_leaf(node, key, rid)  # type: ignore[arg-type]
        internal: _Internal = node  # type: ignore[assignment]
        idx = bisect.bisect_right(internal.keys, key)
        split = self._insert(internal.children[idx], key, rid)
        if split is None:
            return None
        sep_key, right = split
        internal.keys.insert(idx, sep_key)
        internal.children.insert(idx + 1, right)
        if len(internal.children) <= self.internal_fanout:
            return None
        return self._split_internal(internal)

    def _insert_leaf(
        self, leaf: _Leaf, key: Any, rid: tuple[int, int]
    ) -> tuple[Any, _Node] | None:
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx].append(rid)
            return None
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [rid])
        self._num_keys += 1
        if len(leaf.keys) <= self.leaf_capacity:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf(self.allocator.allocate())
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Node]:
        mid = len(node.children) // 2
        sep_key = node.keys[mid - 1]
        right = _Internal(self.allocator.allocate())
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        return sep_key, right

    # -- validation (tests) -------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise StorageError if any structural invariant is violated."""
        self._check_node(self._root, None, None, depth=1)
        # Leaf chain must be sorted and complete.
        seen = 0
        prev_key = None
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            for key in leaf.keys:
                if prev_key is not None and not prev_key < key:
                    raise StorageError("leaf chain keys out of order")
                prev_key = key
                seen += 1
            leaf = leaf.next_leaf
        if seen != self._num_keys:
            raise StorageError(
                f"leaf chain has {seen} keys, expected {self._num_keys}"
            )

    def _check_node(self, node: _Node, low: Any, high: Any, depth: int) -> int:
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError("key below subtree lower bound")
            if high is not None and key >= high:
                raise StorageError("key above subtree upper bound")
        if sorted(node.keys) != node.keys:
            raise StorageError("node keys not sorted")
        if node.is_leaf:
            if len(node.keys) > self.leaf_capacity:
                raise StorageError("leaf over capacity")
            if depth != self.height:
                raise StorageError("leaves at different depths")
            return depth
        internal: _Internal = node  # type: ignore[assignment]
        if len(internal.children) != len(internal.keys) + 1:
            raise StorageError("internal child/key count mismatch")
        if len(internal.children) > self.internal_fanout:
            raise StorageError("internal node over fan-out")
        bounds = [low, *internal.keys, high]
        for i, child in enumerate(internal.children):
            self._check_node(child, bounds[i], bounds[i + 1], depth + 1)
        return depth


def build_index(table, column: str) -> BPlusTree:
    """Index ``table`` on ``column``: key → rid for every stored row."""
    tree = BPlusTree()
    idx = table.schema.index_of(column)
    for page_no in range(table.num_pages):
        page = table.read_page(page_no)
        for slot in range(page.num_tuples):
            tree.insert(page.read_field(slot, idx), (page_no, slot))
    return tree
