"""PAX (Partition Attributes Across) page layout.

Section III of the paper discusses PAX [2]: pages keep a tuple-level
interface, but *within* a page the tuples are vertically partitioned
into one minipage per attribute, greatly improving cache locality for
scans touching few fields. Section IV notes HIQUE "is not tied to the
NSM in any way; any other storage model, such as the DSM or the PAX
models, can be used" — this module substantiates that claim: a PAX page
with the same 4096-byte footprint and the same page-level API surface
(``num_tuples``, ``read``, ``read_field``, ``rows``) as
:class:`~repro.storage.page.Page`.

Layout: header, then one fixed-width minipage per column, each sized
for the page's tuple capacity. Field *f* of tuple *t* lives at
``minipage_offset[f] + t * field_size[f]`` — still pure offset
arithmetic, so generated code could address it directly.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence

from repro.errors import PageFullError, StorageError
from repro.storage.page import HEADER_SIZE, PAGE_SIZE
from repro.storage.schema import Schema
from repro.storage.table import Table

_HEADER_CODEC = struct.Struct("<I4x")


class PaxPage:
    """One PAX page: per-column minipages behind a tuple interface."""

    __slots__ = ("schema", "data", "_capacity", "_minipage_offsets",
                 "_field_codecs")

    def __init__(self, schema: Schema, data: bytearray | None = None):
        self.schema = schema
        tuple_size = schema.tuple_size
        if tuple_size > PAGE_SIZE - HEADER_SIZE:
            raise StorageError("tuple does not fit a PAX page")
        self._capacity = (PAGE_SIZE - HEADER_SIZE) // tuple_size
        offsets = []
        position = HEADER_SIZE
        for column in schema:
            offsets.append(position)
            position += column.dtype.size * self._capacity
        if position > PAGE_SIZE:
            raise StorageError("PAX minipages overflow the page")
        self._minipage_offsets = tuple(offsets)
        self._field_codecs = tuple(
            struct.Struct("<" + c.dtype.struct_char) for c in schema
        )
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            _HEADER_CODEC.pack_into(self.data, 0, 0)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError("PAX page buffer must be one page")
            self.data = data

    # -- header ----------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        return _HEADER_CODEC.unpack_from(self.data, 0)[0]

    @num_tuples.setter
    def num_tuples(self, value: int) -> None:
        _HEADER_CODEC.pack_into(self.data, 0, value)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def is_full(self) -> bool:
        return self.num_tuples >= self._capacity

    # -- addressing -----------------------------------------------------------------
    def field_offset(self, slot: int, column: int) -> int:
        """Byte offset of field ``column`` of tuple ``slot``."""
        size = self.schema[column].dtype.size
        return self._minipage_offsets[column] + slot * size

    def minipage_offset(self, column: int) -> int:
        return self._minipage_offsets[column]

    # -- tuple interface ---------------------------------------------------------------
    def insert_row(self, row: Sequence[Any]) -> int:
        if len(row) != len(self.schema):
            raise StorageError("row arity mismatch")
        slot = self.num_tuples
        if slot >= self._capacity:
            raise PageFullError("PAX page is full")
        for column_index, value in enumerate(row):
            dtype = self.schema[column_index].dtype
            self._field_codecs[column_index].pack_into(
                self.data,
                self.field_offset(slot, column_index),
                dtype.to_storage(value),
            )
        self.num_tuples = slot + 1
        return slot

    def read_field(self, slot: int, column: int) -> Any:
        if not 0 <= slot < self.num_tuples:
            raise StorageError(f"slot {slot} out of range")
        raw = self._field_codecs[column].unpack_from(
            self.data, self.field_offset(slot, column)
        )[0]
        return self.schema[column].dtype.from_storage(raw)

    def read(self, slot: int) -> tuple:
        return tuple(
            self.read_field(slot, column)
            for column in range(len(self.schema))
        )

    def rows(self) -> Iterator[tuple]:
        for slot in range(self.num_tuples):
            yield self.read(slot)

    def column_values(self, column: int) -> list[Any]:
        """All values of one attribute — a single minipage sweep."""
        codec = self._field_codecs[column]
        dtype = self.schema[column].dtype
        base = self._minipage_offsets[column]
        size = dtype.size
        return [
            dtype.from_storage(
                codec.unpack_from(self.data, base + slot * size)[0]
            )
            for slot in range(self.num_tuples)
        ]

    def __len__(self) -> int:
        return self.num_tuples


class PaxRelation:
    """An in-memory PAX relation: a list of PAX pages."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.pages: list[PaxPage] = []

    @property
    def num_rows(self) -> int:
        return sum(page.num_tuples for page in self.pages)

    def load_rows(self, rows) -> int:
        count = 0
        page: PaxPage | None = self.pages[-1] if self.pages else None
        for row in rows:
            if page is None or page.is_full:
                page = PaxPage(self.schema)
                self.pages.append(page)
            page.insert_row(row)
            count += 1
        return count

    def scan_rows(self) -> Iterator[tuple]:
        for page in self.pages:
            yield from page.rows()

    def scan_columns(self, columns: Sequence[int]) -> Iterator[tuple]:
        """Scan touching only the requested attributes' minipages —
        the access pattern PAX accelerates."""
        for page in self.pages:
            values = [page.column_values(c) for c in columns]
            yield from zip(*values)


def pax_from_table(table: Table) -> PaxRelation:
    """Convert an NSM table into its PAX representation."""
    relation = PaxRelation(table.name, table.schema)
    relation.load_rows(table.scan_rows())
    return relation


def trace_nsm_scan(table: Table, columns: Sequence[int], probe) -> None:
    """Feed an NSM narrow-column scan's accesses through a probe."""
    schema = table.schema
    file_id = table.file.file_id
    for page_no in range(table.num_pages):
        page = table.read_page(page_no)
        for slot in range(page.num_tuples):
            base = page.slot_offset(slot)
            for column in columns:
                probe.load(
                    probe.space.page_addr(
                        file_id, page_no, base + schema.offset_of(column)
                    ),
                    schema[column].dtype.size,
                )


def trace_pax_scan(
    relation: PaxRelation, columns: Sequence[int], probe, file_id: int = 999
) -> None:
    """Feed the equivalent PAX scan's accesses through a probe.

    Consecutive tuples' fields are adjacent inside a minipage, so the
    same logical scan touches far fewer cache lines.
    """
    for page_no, page in enumerate(relation.pages):
        for column in columns:
            size = relation.schema[column].dtype.size
            base = page.minipage_offset(column)
            for slot in range(page.num_tuples):
                probe.load(
                    probe.space.page_addr(
                        file_id, page_no, base + slot * size
                    ),
                    size,
                )
