"""Buffer manager with LRU replacement and fine-grained latching.

The paper's system buffers disk pages with an LRU policy (Section IV).
This manager serves :class:`~repro.storage.page.Page` objects keyed by
``(file, page number)``, tracks pin counts so in-flight pages are never
evicted, writes dirty pages back on eviction, and exposes hit/miss
statistics used by tests and by the memory-hierarchy probes.

Concurrency follows the classic latching discipline:

* one **pool latch** protects the frame table — lookup, LRU reordering,
  installation, victim selection and statistics;
* **per-frame pin counts** (mutated only under the latch) guarantee a
  pinned page is never chosen for eviction, so a reader holding a pin
  can use its page without any lock;
* on a miss against a :class:`~repro.storage.heapfile.DiskFile`, the
  page **read happens outside the latch** — concurrent misses overlap
  their I/O waits, and the installer re-checks the frame table so two
  racing readers of one page share a single frame.

For :class:`~repro.storage.heapfile.MemoryFile` files the manager hands
out zero-copy views of the in-memory page, which keeps the hot query
paths allocation-free while preserving identical bookkeeping.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import BufferPoolError, StorageError
from repro.obs import record_page_access
from repro.storage.heapfile import HeapFile, MemoryFile
from repro.storage.page import Page
from repro.storage.schema import Schema


@dataclass
class BufferStats:
    """Counters exposed for tests, tuning and the hardware model."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0


@dataclass
class _Frame:
    page: Page
    file: HeapFile
    page_no: int
    pin_count: int = 0
    dirty: bool = False
    zero_copy: bool = field(default=False, repr=False)


class BufferManager:
    """A fixed-capacity page cache with LRU replacement.

    Args:
        capacity: maximum number of resident frames.  The paper sizes the
            pool to keep working sets memory resident; the default is
            generous for the benchmark scales used here.

    All public methods are safe to call from concurrent reader threads;
    writers (appends, dirty unpins) are additionally serialized by the
    owning table and the catalogue's exclusive gate.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise StorageError("buffer capacity must be positive")
        self.capacity = capacity
        self.stats = BufferStats()
        #: Pool latch: guards ``_frames``, pin counts and ``stats``.
        self._latch = threading.RLock()
        # dict preserves insertion order; we re-insert on access so the
        # first key is always the least recently used frame.
        self._frames: dict[tuple[int, int], _Frame] = {}

    # -- public API -----------------------------------------------------------
    def get_page(self, file: HeapFile, page_no: int, schema: Schema) -> Page:
        """Pin and return the requested page.

        Callers must :meth:`unpin` the page when done.  For convenience in
        read-mostly scan code, see :meth:`scan_page` which pins and unpins
        around a single use.
        """
        key = (file.file_id, page_no)
        while True:
            with self._latch:
                frame = self._lookup(file, page_no)
                if frame is not None:
                    frame.pin_count += 1
                    return frame.page
            loaded = self._load(file, page_no, schema)
            with self._latch:
                # Only pin the frame if it is still the resident one; a
                # concurrent eviction between load and pin means retry.
                if self._frames.get(key) is loaded:
                    loaded.pin_count += 1
                    return loaded.page

    def unpin(self, file: HeapFile, page_no: int, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty if the caller wrote it."""
        key = (file.file_id, page_no)
        with self._latch:
            frame = self._frames.get(key)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError(
                    f"unpin of page {page_no} that is not pinned"
                )
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    @contextmanager
    def shared(
        self, file: HeapFile, page_no: int, schema: Schema
    ) -> Iterator[Page]:
        """Shared-read scope: the page stays pinned (hence resident and
        safe from eviction) for the duration of the ``with`` block."""
        page = self.get_page(file, page_no, schema)
        try:
            yield page
        finally:
            self.unpin(file, page_no)

    def scan_page(self, file: HeapFile, page_no: int, schema: Schema) -> Page:
        """Return a page for immediate, unpinned read access.

        The page stays resident under LRU like any other access; the
        caller promises not to hold the reference across evicting calls.
        This matches the paper's ``read_page`` used inside generated scan
        loops.  (Eviction never invalidates a returned ``Page`` — the
        object keeps its buffer — so a concurrent reader at worst keeps
        a private snapshot alive.)
        """
        with self._latch:
            frame = self._lookup(file, page_no)
            if frame is not None:
                return frame.page
        return self._load(file, page_no, schema).page

    def new_page(self, file: HeapFile, schema: Schema) -> tuple[int, Page]:
        """Append a fresh page to ``file`` and return it pinned."""
        page = Page(schema)
        page_no = file.append_page(bytes(page.data))
        with self._latch:
            frame = self._install(file, page_no, page)
            frame.pin_count += 1
            frame.dirty = True
            return page_no, frame.page

    def flush_all(self) -> None:
        """Write back every dirty frame (does not evict)."""
        with self._latch:
            for frame in self._frames.values():
                self._writeback(frame)

    def evict_all(self) -> None:
        """Drop all unpinned frames, writing dirty ones back."""
        with self._latch:
            for key in [
                k for k, f in self._frames.items() if f.pin_count == 0
            ]:
                self._evict(key)

    @property
    def num_resident(self) -> int:
        with self._latch:
            return len(self._frames)

    @property
    def num_pinned(self) -> int:
        """Frames currently pinned (0 when the pool is quiescent)."""
        with self._latch:
            return sum(1 for f in self._frames.values() if f.pin_count > 0)

    def resident_keys(self) -> Iterator[tuple[int, int]]:
        with self._latch:
            return iter(list(self._frames.keys()))

    # -- internals --------------------------------------------------------------
    def _lookup(self, file: HeapFile, page_no: int) -> _Frame | None:
        """Hit path; caller holds the latch."""
        key = (file.file_id, page_no)
        frame = self._frames.get(key)
        if frame is None:
            return None
        self.stats.hits += 1
        record_page_access(hit=True)
        # Move to MRU position.
        self._frames.pop(key)
        self._frames[key] = frame
        return frame

    def _load(self, file: HeapFile, page_no: int, schema: Schema) -> _Frame:
        """Miss path: fetch the page, then install under the latch.

        Memory files resolve to a zero-copy view (no I/O), so they are
        handled entirely under the latch; disk files read outside it so
        concurrent misses overlap their I/O, with a re-check on install
        so two racing readers of one page share a single frame.
        """
        key = (file.file_id, page_no)
        if isinstance(file, MemoryFile):
            with self._latch:
                frame = self._frames.get(key)
                if frame is not None:
                    return frame
                self.stats.misses += 1
                record_page_access(hit=False)
                page = Page(schema, file.raw_page(page_no))
                frame = self._install(file, page_no, page)
                frame.zero_copy = True
                return frame
        data = file.read_page(page_no)
        with self._latch:
            frame = self._frames.get(key)
            if frame is not None:
                # A racer installed the page while we read; our copy
                # becomes garbage and the shared frame wins.  The read
                # still happened, so it counts as a miss.
                self.stats.misses += 1
                record_page_access(hit=False)
                return frame
            self.stats.misses += 1
            record_page_access(hit=False)
            return self._install(file, page_no, Page(schema, data))

    def _install(self, file: HeapFile, page_no: int, page: Page) -> _Frame:
        # Caller holds the latch.
        while len(self._frames) >= self.capacity:
            victim = self._pick_victim()
            self._evict(victim)
        frame = _Frame(page=page, file=file, page_no=page_no)
        self._frames[(file.file_id, page_no)] = frame
        return frame

    def _pick_victim(self) -> tuple[int, int]:
        for key, frame in self._frames.items():  # LRU order
            if frame.pin_count == 0:
                return key
        raise BufferPoolError("all buffer frames are pinned")

    def _evict(self, key: tuple[int, int]) -> None:
        frame = self._frames[key]
        if frame.pin_count:
            raise BufferPoolError(
                f"attempt to evict pinned page {key} "
                f"(pin count {frame.pin_count})"
            )
        del self._frames[key]
        self._writeback(frame)
        self.stats.evictions += 1

    def _writeback(self, frame: _Frame) -> None:
        if frame.dirty:
            # Zero-copy frames share the file's buffer: nothing to copy,
            # but we still count the logical write-back.
            if not frame.zero_copy:
                frame.file.write_page(frame.page_no, bytes(frame.page.data))
            frame.dirty = False
            self.stats.writebacks += 1
