"""Relational schemas and the tuple codec built on top of them.

A :class:`Schema` is an ordered list of named, typed columns.  It
precomputes everything the engines and the code generator need for
offset-based field access:

* the full-tuple ``struct`` codec (``encode`` / ``decode``);
* per-field byte offsets and single-field ``struct.Struct`` unpackers, so
  generated code (and the "optimized hard-coded" baselines) can read one
  field of one tuple straight out of a page buffer without touching the
  other fields — the Python analogue of the paper's pointer casts.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import CatalogError, StorageError
from repro.storage.types import DataType


class Column:
    """A named, typed column, optionally qualified by its table name."""

    __slots__ = ("name", "dtype", "table")

    def __init__(self, name: str, dtype: DataType, table: str | None = None):
        self.name = name
        self.dtype = dtype
        self.table = table

    @property
    def qualified_name(self) -> str:
        """``table.column`` when the table is known, else the bare name."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    def renamed(self, name: str, table: str | None = None) -> "Column":
        return Column(name, self.dtype, table)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Column({self.qualified_name}: {self.dtype.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.dtype == other.dtype
            and self.table == other.table
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype, self.table))


class Schema:
    """An ordered collection of columns with a fixed-length tuple codec."""

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise StorageError("a schema requires at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            # Qualified access may still disambiguate; only the unqualified
            # duplicates are ambiguous and we let the binder handle those.
            qualified = [c.qualified_name for c in self.columns]
            if len(set(qualified)) != len(qualified):
                raise CatalogError(f"duplicate columns in schema: {names}")

        # Full-tuple codec.  '<' fixes byte order and removes padding so
        # offsets are exactly the sum of preceding field sizes.
        self._format = "<" + "".join(c.dtype.struct_char for c in self.columns)
        self._codec = struct.Struct(self._format)

        # Per-field offsets and single-field codecs for direct access.
        offsets: list[int] = []
        pos = 0
        for col in self.columns:
            offsets.append(pos)
            pos += col.dtype.size
        self._offsets = tuple(offsets)
        self._field_codecs = tuple(
            struct.Struct("<" + c.dtype.struct_char) for c in self.columns
        )
        self._index_by_name: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            self._index_by_name.setdefault(col.name, i)
            if col.table:
                self._index_by_name[col.qualified_name] = i

    # -- basic introspection ----------------------------------------------
    @property
    def tuple_size(self) -> int:
        """Bytes one encoded tuple occupies on a page."""
        return self._codec.size

    @property
    def struct_format(self) -> str:
        return self._format

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - display helper
        cols = ", ".join(f"{c.qualified_name} {c.dtype.name}" for c in self)
        return f"Schema({cols})"

    def index_of(self, name: str) -> int:
        """Position of a column by bare or qualified name."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._index_by_name

    def offset_of(self, index: int) -> int:
        """Byte offset of column ``index`` inside an encoded tuple."""
        return self._offsets[index]

    def field_codec(self, index: int) -> struct.Struct:
        """Single-field ``struct.Struct`` for column ``index``."""
        return self._field_codecs[index]

    # -- codec --------------------------------------------------------------
    def encode(self, row: Sequence[Any]) -> bytes:
        """Pack a Python row into its fixed-length page representation."""
        if len(row) != len(self.columns):
            raise StorageError(
                f"row arity {len(row)} != schema arity {len(self.columns)}"
            )
        storage = [
            col.dtype.to_storage(val) for col, val in zip(self.columns, row)
        ]
        return self._codec.pack(*storage)

    def decode(self, buffer, offset: int = 0) -> tuple:
        """Unpack one tuple at ``offset`` in ``buffer`` into Python values."""
        raw = self._codec.unpack_from(buffer, offset)
        return tuple(
            col.dtype.from_storage(val) for col, val in zip(self.columns, raw)
        )

    def decode_field(self, buffer, tuple_offset: int, index: int) -> Any:
        """Unpack a single field without decoding the rest of the tuple."""
        value = self._field_codecs[index].unpack_from(
            buffer, tuple_offset + self._offsets[index]
        )[0]
        return self.columns[index].dtype.from_storage(value)

    # -- derivation helpers --------------------------------------------------
    def project(self, indexes: Sequence[int]) -> "Schema":
        """A new schema keeping the columns at ``indexes`` (in order)."""
        return Schema(self.columns[i] for i in indexes)

    def qualify(self, table: str) -> "Schema":
        """A copy of this schema with every column owned by ``table``."""
        return Schema(Column(c.name, c.dtype, table) for c in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the join of two inputs (columns of both, in order)."""
        return Schema(self.columns + other.columns)
