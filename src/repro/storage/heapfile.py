"""Heap files: ordered collections of raw pages.

The paper keeps each table in its own file on disk; the buffer manager
mediates access.  Two implementations share one interface:

* :class:`MemoryFile` — pages live in a Python list.  This is the default
  for benchmarks (the paper's data sets are memory resident too).
* :class:`DiskFile` — pages live in a real file, read/written with
  ``seek``; used to exercise the buffer manager's eviction/write-back
  path under genuine I/O.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterator

from repro.errors import StorageError
from repro.storage.page import PAGE_SIZE

_file_ids = itertools.count(1)


class HeapFile:
    """Abstract page file.  Page numbers are dense, starting at zero."""

    def __init__(self) -> None:
        #: Unique id used by the buffer manager as part of the frame key.
        self.file_id = next(_file_ids)

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    def read_page(self, page_no: int) -> bytearray:
        """Return a mutable copy of the page's bytes."""
        raise NotImplementedError

    def write_page(self, page_no: int, data: bytes) -> None:
        raise NotImplementedError

    def append_page(self, data: bytes) -> int:
        """Add a new page at the end of the file; returns its number."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources."""

    def _check_size(self, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be {PAGE_SIZE} bytes, got {len(data)}"
            )

    def _check_page_no(self, page_no: int) -> None:
        if not 0 <= page_no < self.num_pages:
            raise StorageError(
                f"page {page_no} out of range (file has {self.num_pages})"
            )


class MemoryFile(HeapFile):
    """A heap file whose pages are held in memory."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: list[bytearray] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def read_page(self, page_no: int) -> bytearray:
        self._check_page_no(page_no)
        return bytearray(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check_page_no(page_no)
        self._check_size(data)
        self._pages[page_no] = bytearray(data)

    def append_page(self, data: bytes) -> int:
        self._check_size(data)
        self._pages.append(bytearray(data))
        return len(self._pages) - 1

    def raw_page(self, page_no: int) -> bytearray:
        """Zero-copy view of a page (memory files only).

        The buffer manager uses this to avoid double-buffering pages that
        already live in memory; callers must not resize the buffer.
        """
        self._check_page_no(page_no)
        return self._pages[page_no]


class DiskFile(HeapFile):
    """A heap file backed by an operating-system file."""

    def __init__(self, path: str, create: bool = True):
        super().__init__()
        self.path = path
        mode = "r+b"
        if create and not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._fh = open(path, mode)
        size = os.fstat(self._fh.fileno()).st_size
        if size % PAGE_SIZE:
            raise StorageError(
                f"file {path!r} size {size} is not a multiple of the "
                f"page size"
            )
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def read_page(self, page_no: int) -> bytearray:
        self._check_page_no(page_no)
        self._fh.seek(page_no * PAGE_SIZE)
        data = self._fh.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_no}")
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check_page_no(page_no)
        self._check_size(data)
        self._fh.seek(page_no * PAGE_SIZE)
        self._fh.write(data)

    def append_page(self, data: bytes) -> int:
        self._check_size(data)
        self._fh.seek(self._num_pages * PAGE_SIZE)
        self._fh.write(data)
        self._num_pages += 1
        return self._num_pages - 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "DiskFile":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()

    def iter_pages(self) -> Iterator[bytearray]:  # pragma: no cover
        for page_no in range(self._num_pages):
            yield self.read_page(page_no)
