"""Heap files: ordered collections of raw pages.

The paper keeps each table in its own file on disk; the buffer manager
mediates access.  Two implementations share one interface:

* :class:`MemoryFile` — pages live in a Python list.  This is the default
  for benchmarks (the paper's data sets are memory resident too).
* :class:`DiskFile` — pages live in a real file, read/written with
  positioned I/O (``os.pread``/``os.pwrite``), so concurrent readers
  never contend on shared seek state; used to exercise the buffer
  manager's eviction/write-back path under genuine I/O.

Reads are safe from any number of threads.  Mutations (``write_page``,
``append_page``) take a per-file lock; higher layers additionally
serialize writers behind the catalogue's exclusive gate.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Iterator

from repro.errors import StorageError
from repro.obs import record_disk_read
from repro.storage.page import PAGE_SIZE

_file_ids = itertools.count(1)


class HeapFile:
    """Abstract page file.  Page numbers are dense, starting at zero."""

    def __init__(self) -> None:
        #: Unique id used by the buffer manager as part of the frame key.
        self.file_id = next(_file_ids)
        #: Serializes structural mutation (appends, writes).
        self._mutate = threading.Lock()

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    def read_page(self, page_no: int) -> bytearray:
        """Return a mutable copy of the page's bytes."""
        raise NotImplementedError

    def write_page(self, page_no: int, data: bytes) -> None:
        raise NotImplementedError

    def append_page(self, data: bytes) -> int:
        """Add a new page at the end of the file; returns its number."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources."""

    def _check_size(self, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be {PAGE_SIZE} bytes, got {len(data)}"
            )

    def _check_page_no(self, page_no: int) -> None:
        if not 0 <= page_no < self.num_pages:
            raise StorageError(
                f"page {page_no} out of range (file has {self.num_pages})"
            )


class MemoryFile(HeapFile):
    """A heap file whose pages are held in memory."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: list[bytearray] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def read_page(self, page_no: int) -> bytearray:
        self._check_page_no(page_no)
        return bytearray(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check_page_no(page_no)
        self._check_size(data)
        with self._mutate:
            self._pages[page_no] = bytearray(data)

    def append_page(self, data: bytes) -> int:
        self._check_size(data)
        with self._mutate:
            self._pages.append(bytearray(data))
            return len(self._pages) - 1

    def raw_page(self, page_no: int) -> bytearray:
        """Zero-copy view of a page (memory files only).

        The buffer manager uses this to avoid double-buffering pages that
        already live in memory; callers must not resize the buffer.
        """
        self._check_page_no(page_no)
        return self._pages[page_no]


class DiskFile(HeapFile):
    """A heap file backed by an operating-system file.

    Page reads use ``os.pread`` — a positioned read with no shared file
    offset — so any number of threads can fetch different pages of the
    same file concurrently, and the I/O waits overlap.

    ``read_latency`` adds a modeled per-page fetch wait (seconds) on
    top of the real read — the disk-level analogue of the
    :mod:`repro.memsim` cache model, used by benchmarks to reproduce
    latency-bound storage (spinning or networked disks) deterministically
    on any machine.  Zero (the default) means real I/O only.
    """

    def __init__(
        self, path: str, create: bool = True, read_latency: float = 0.0
    ):
        super().__init__()
        self.path = path
        self.read_latency = read_latency
        mode = "r+b"
        if create and not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._fh = open(path, mode)
        self._fd = self._fh.fileno()
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE:
            raise StorageError(
                f"file {path!r} size {size} is not a multiple of the "
                f"page size"
            )
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def read_page(self, page_no: int) -> bytearray:
        self._check_page_no(page_no)
        started = time.perf_counter()
        if self.read_latency:
            time.sleep(self.read_latency)
        data = os.pread(self._fd, PAGE_SIZE, page_no * PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_no}")
        # Latency includes any modeled wait: that is the fetch time the
        # rest of the system observes.
        record_disk_read(time.perf_counter() - started)
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check_page_no(page_no)
        self._check_size(data)
        with self._mutate:
            os.pwrite(self._fd, data, page_no * PAGE_SIZE)

    def append_page(self, data: bytes) -> int:
        self._check_size(data)
        with self._mutate:
            os.pwrite(self._fd, data, self._num_pages * PAGE_SIZE)
            self._num_pages += 1
            return self._num_pages - 1

    def advise_random(self) -> None:
        """Disable kernel readahead for this file.

        Models latency-bound storage (random-access media, networked
        or cache-cold multi-tenant disks) where each page fetch is a
        real wait — the regime in which concurrent readers overlap
        their I/O.  A no-op where ``posix_fadvise`` is unavailable.
        """
        if hasattr(os, "posix_fadvise"):
            os.posix_fadvise(self._fd, 0, 0, os.POSIX_FADV_RANDOM)

    def drop_os_cache(self) -> None:
        """Advise the kernel to drop this file's cached pages.

        Benchmarks use this to measure genuinely cold scans; a no-op on
        platforms without ``posix_fadvise``.
        """
        os.fsync(self._fd)
        if hasattr(os, "posix_fadvise"):
            os.posix_fadvise(self._fd, 0, 0, os.POSIX_FADV_DONTNEED)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "DiskFile":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()

    def iter_pages(self) -> Iterator[bytearray]:  # pragma: no cover
        for page_no in range(self._num_pages):
            yield self.read_page(page_no)
