"""System catalogue: table registry plus optimizer statistics.

The SQL binder validates queries against the catalogue (Section IV of
the paper: "The SQL parser checks the query for validity against the
system catalogue"), and the optimizer's greedy join ordering consumes the
per-table statistics kept here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import CatalogError
from repro.parallel.latch import ReadWriteLatch
from repro.storage.buffer import BufferManager
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


@dataclass
class ColumnStats:
    """Per-column statistics used for selectivity/grouping estimates."""

    distinct: int = 0
    min_value: Any = None
    max_value: Any = None


@dataclass
class TableStats:
    """Per-table statistics for the greedy optimizer."""

    row_count: int = 0
    page_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def distinct_of(self, column: str, default: int | None = None) -> int:
        stats = self.columns.get(column)
        if stats is None or stats.distinct <= 0:
            # A common default: assume uniqueness-ish for key-like columns.
            return default if default is not None else max(self.row_count, 1)
        return stats.distinct


class Catalog:
    """Name → table mapping shared by the parser, optimizer and engines.

    Lookups are safe from concurrent reader threads (a registry lock
    guards the dictionaries).  Mutations — DDL, bulk loads through
    :meth:`exclusive`, ``analyze`` — additionally take the write side of
    :attr:`gate`, the readers–writer latch the query service uses to
    admit concurrent read queries while keeping writers exclusive.
    """

    def __init__(self, buffer: BufferManager | None = None):
        #: Shared buffer pool handed to tables created through the catalog.
        self.buffer = buffer if buffer is not None else BufferManager()
        #: Readers (query executions) vs writers (DDL/loads/analyze).
        self.gate = ReadWriteLatch()
        self._lock = threading.RLock()
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._listeners: list[Callable[[str | None], None]] = []

    # -- change notification ------------------------------------------------------
    def add_listener(
        self, listener: Callable[[str | None, str], None]
    ) -> None:
        """Register a callback fired after catalogue or data changes.

        The callback receives ``(name, kind)``: the affected table name
        (lowercased, or ``None`` when every table is affected) and the
        change kind — ``"ddl"`` for structural changes (create/drop/
        register, ``analyze``) or ``"dml"`` for data mutations under an
        unchanged schema.  The query service invalidates wholesale on
        DDL but only version-dependent entries on DML.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[[str | None, str], None]
    ) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, name: str | None, kind: str = "ddl") -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(name, kind)

    def notify_dml(self, name: str) -> None:
        """Announce a data mutation of one table (schema unchanged).

        Called by the DML executor and bulk-load paths *after* the
        table's :attr:`~repro.storage.table.Table.version` has moved,
        while still holding the write gate — listeners therefore observe
        the new version before any reader can race in.
        """
        self._notify(name.lower(), kind="dml")

    # -- write gating ------------------------------------------------------------
    def exclusive(self):
        """Exclusive-writer scope for out-of-band mutations (bulk loads).

        DDL and ``analyze`` gate themselves; callers mutating table
        contents directly (``Database.load_rows``, benchmark loaders)
        wrap the mutation in ``with catalog.exclusive(): ...`` so no
        read query observes a half-loaded table.
        """
        return self.gate.write()

    # -- registration -----------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        key = name.lower()
        with self.gate.write():
            with self._lock:
                if key in self._tables:
                    raise CatalogError(f"table {name!r} already exists")
                table = Table(name, schema, buffer=self.buffer)
                self._tables[key] = table
                self._stats[key] = TableStats()
            self._notify(key)
        return table

    def register(self, table: Table) -> Table:
        """Adopt an externally built table."""
        key = table.name.lower()
        with self.gate.write():
            with self._lock:
                if key in self._tables:
                    raise CatalogError(f"table {table.name!r} already exists")
                self._tables[key] = table
                self._stats[key] = TableStats()
            self._notify(key)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        with self.gate.write():
            with self._lock:
                if key not in self._tables:
                    raise CatalogError(f"unknown table {name!r}")
                self._tables[key].file.close()
                del self._tables[key]
                del self._stats[key]
            self._notify(key)

    # -- lookup -----------------------------------------------------------------
    def table(self, name: str) -> Table:
        with self._lock:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def tables(self) -> Iterator[Table]:
        with self._lock:
            return iter(list(self._tables.values()))

    def versions(self) -> dict[str, int]:
        """Current mutation epoch of every table, by lowercased name."""
        with self._lock:
            return {key: t.version for key, t in self._tables.items()}

    def version_of(self, name: str) -> int:
        """Current mutation epoch of one table."""
        return self.table(name).version

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def resolve_column(self, name: str) -> tuple[Table, Column]:
        """Resolve a possibly qualified column name to (table, column).

        Bare names must be unambiguous across all registered tables; this
        is the rule the binder applies for queries without aliases.
        """
        if "." in name:
            table_name, column_name = name.split(".", 1)
            table = self.table(table_name)
            idx = table.schema.index_of(column_name)
            return table, table.schema[idx]
        matches = [
            (t, t.schema[t.schema.index_of(name)])
            for t in self.tables()
            if t.schema.has_column(name)
        ]
        if not matches:
            raise CatalogError(f"unknown column {name!r}")
        if len(matches) > 1:
            owners = ", ".join(t.name for t, _ in matches)
            raise CatalogError(f"ambiguous column {name!r} (in {owners})")
        return matches[0]

    # -- statistics ----------------------------------------------------------------
    def stats(self, name: str) -> TableStats:
        key = name.lower()
        with self._lock:
            if key not in self._stats:
                raise CatalogError(f"unknown table {name!r}")
            return self._stats[key]

    def analyze(self, name: str | None = None) -> None:
        """Recompute statistics for one table (or all tables).

        Gathers row/page counts and exact per-column distinct counts and
        min/max — the paper gathers statistics "at the highest level of
        detail" before running its benchmarks.
        """
        with self.gate.write():
            names: Iterable[str]
            with self._lock:
                if name is None:
                    names = list(self._tables)
                else:
                    if name.lower() not in self._tables:
                        raise CatalogError(f"unknown table {name!r}")
                    names = [name.lower()]
            for key in names:
                table = self.table(key)
                stats = TableStats(
                    row_count=table.num_rows, page_count=table.num_pages
                )
                collectors: list[set] = [set() for _ in table.schema]
                minima: list[Any] = [None] * len(table.schema)
                maxima: list[Any] = [None] * len(table.schema)
                for row in table.scan_rows():
                    for i, value in enumerate(row):
                        collectors[i].add(value)
                        if minima[i] is None or value < minima[i]:
                            minima[i] = value
                        if maxima[i] is None or value > maxima[i]:
                            maxima[i] = value
                for i, column in enumerate(table.schema):
                    stats.columns[column.name] = ColumnStats(
                        distinct=len(collectors[i]),
                        min_value=minima[i],
                        max_value=maxima[i],
                    )
                with self._lock:
                    self._stats[key] = stats
            self._notify(name.lower() if name is not None else None)
