"""Storage substrate: types, schemas, NSM pages, files, buffer, indexes.

Public surface re-exported here; see DESIGN.md §3 for the inventory.
"""

from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.btree import BPlusTree, build_index
from repro.storage.catalog import Catalog, ColumnStats, TableStats
from repro.storage.dsm import ColumnTable, from_rows, from_table
from repro.storage.heapfile import DiskFile, HeapFile, MemoryFile
from repro.storage.page import HEADER_SIZE, PAGE_SIZE, Page
from repro.storage.pax import PaxPage, PaxRelation, pax_from_table
from repro.storage.schema import Column, Schema
from repro.storage.table import Table, table_from_rows
from repro.storage.types import (
    BOOL,
    DATE,
    DOUBLE,
    INT,
    DataType,
    char,
    date_to_ordinal,
    ordinal_to_date,
    type_from_sql,
    varchar,
)

__all__ = [
    "BOOL",
    "BPlusTree",
    "BufferManager",
    "BufferStats",
    "Catalog",
    "Column",
    "ColumnStats",
    "ColumnTable",
    "DATE",
    "DOUBLE",
    "DataType",
    "DiskFile",
    "HEADER_SIZE",
    "HeapFile",
    "INT",
    "MemoryFile",
    "PAGE_SIZE",
    "Page",
    "PaxPage",
    "PaxRelation",
    "Schema",
    "Table",
    "TableStats",
    "build_index",
    "char",
    "date_to_ordinal",
    "from_rows",
    "from_table",
    "ordinal_to_date",
    "pax_from_table",
    "table_from_rows",
    "type_from_sql",
    "varchar",
]
