"""DSM (Decomposition Storage Model) column store.

The MonetDB comparator in the paper (Section VI-C) evaluates queries
column-at-a-time over vertically partitioned tables.  This module builds
that substrate: a :class:`ColumnTable` holds one NumPy array per column,
converted from (or loaded alongside) an NSM :class:`~repro.storage.table.Table`.

String columns are stored as NumPy fixed-width byte arrays so the
vectorized engine can compare them without per-row Python objects, which
is the property that makes DSM engines fast in the first place.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import Schema
from repro.storage.table import Table


def _numpy_dtype(code: str, size: int) -> np.dtype:
    if code == "int":
        return np.dtype(np.int64)
    if code == "double":
        return np.dtype(np.float64)
    if code == "date":
        return np.dtype(np.int32)
    if code == "bool":
        return np.dtype(np.bool_)
    if code in ("char", "varchar"):
        return np.dtype(f"S{size}")
    raise StorageError(f"no DSM representation for type family {code!r}")


class ColumnTable:
    """A vertically partitioned relation: one array per column."""

    def __init__(self, name: str, schema: Schema, columns: dict[str, np.ndarray]):
        self.name = name
        self.schema = schema
        self._columns = columns
        lengths = {len(a) for a in columns.values()}
        if len(lengths) > 1:
            raise StorageError("DSM columns have differing lengths")
        self.num_rows = lengths.pop() if lengths else 0

    # -- access -----------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The array for a bare or qualified column name."""
        idx = self.schema.index_of(name)
        return self._columns[self.schema[idx].name]

    def column_names(self) -> list[str]:
        return [c.name for c in self.schema]

    def gather(self, names: Sequence[str]) -> list[np.ndarray]:
        """The arrays for several columns, in the requested order."""
        return [self.column(n) for n in names]

    def row(self, index: int) -> tuple:
        """Materialise one row (tests/result assembly only)."""
        out = []
        for col in self.schema:
            value = self._columns[col.name][index]
            if col.dtype.is_string:
                value = bytes(value).rstrip(b" ").decode("utf-8")
            elif col.dtype.code == "bool":
                value = bool(value)
            elif col.dtype.code == "double":
                value = float(value)
            else:
                value = int(value)
            out.append(value)
        return tuple(out)

    def __len__(self) -> int:
        return self.num_rows


def from_table(table: Table) -> ColumnTable:
    """Vertically partition an NSM table into a :class:`ColumnTable`.

    This is the load-time conversion a DSM system performs; it is *not*
    counted inside query time for the benchmark harness, mirroring how
    the paper imports the data into MonetDB ahead of time.
    """
    schema = table.schema
    n = table.num_rows
    arrays = {
        col.name: np.empty(n, dtype=_numpy_dtype(col.dtype.code, col.dtype.size))
        for col in schema
    }
    names = [c.name for c in schema]
    stringish = {
        c.name for c in schema if c.dtype.is_string
    }
    i = 0
    for row in table.scan_rows():
        for name, value in zip(names, row):
            if name in stringish:
                arrays[name][i] = value.encode("utf-8")
            else:
                arrays[name][i] = value
        i += 1
    return ColumnTable(table.name, schema, arrays)


def from_rows(
    name: str, schema: Schema, rows: Iterable[Sequence[Any]]
) -> ColumnTable:
    """Build a column table directly from Python rows."""
    materialised = list(rows)
    n = len(materialised)
    arrays = {}
    for i, col in enumerate(schema):
        dtype = _numpy_dtype(col.dtype.code, col.dtype.size)
        arr = np.empty(n, dtype=dtype)
        if col.dtype.is_string:
            for j, row in enumerate(materialised):
                arr[j] = str(row[i]).encode("utf-8")
        else:
            for j, row in enumerate(materialised):
                arr[j] = col.dtype.to_storage(row[i])
        arrays[col.name] = arr
    return ColumnTable(name, schema, arrays)
