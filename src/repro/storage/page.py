"""NSM slotted pages with fixed-length tuples.

The paper stores tuples consecutively in 4096-byte NSM pages so the
generated code can walk a page as an array (``page->data + t *
tuple_size``).  This module reproduces exactly that layout:

* ``PAGE_SIZE`` bytes per page, the first ``HEADER_SIZE`` of which hold
  the tuple count;
* tuples are fixed length and stored back to back starting right after
  the header, so slot ``t`` lives at ``HEADER_SIZE + t * tuple_size``.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence

from repro.errors import PageFullError, StorageError
from repro.storage.schema import Schema

#: Physical page size, as in the paper (Section IV, "pages of 4096 bytes").
PAGE_SIZE = 4096

#: Page header: ``uint32 num_tuples`` plus reserved bytes kept for
#: alignment; generated code never reads past ``num_tuples``.
HEADER_SIZE = 8

_HEADER_CODEC = struct.Struct("<I4x")


class Page:
    """One NSM page holding fixed-length tuples of a single schema."""

    __slots__ = ("schema", "data", "_tuple_size", "_capacity")

    def __init__(self, schema: Schema, data: bytearray | None = None):
        self.schema = schema
        self._tuple_size = schema.tuple_size
        if self._tuple_size > PAGE_SIZE - HEADER_SIZE:
            raise StorageError(
                f"tuple size {self._tuple_size} exceeds page payload"
            )
        self._capacity = (PAGE_SIZE - HEADER_SIZE) // self._tuple_size
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            _HEADER_CODEC.pack_into(self.data, 0, 0)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page buffer must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            self.data = data

    # -- header accessors ---------------------------------------------------
    @property
    def num_tuples(self) -> int:
        return _HEADER_CODEC.unpack_from(self.data, 0)[0]

    @num_tuples.setter
    def num_tuples(self, value: int) -> None:
        _HEADER_CODEC.pack_into(self.data, 0, value)

    @property
    def capacity(self) -> int:
        """Maximum number of tuples this page can hold."""
        return self._capacity

    @property
    def tuple_size(self) -> int:
        return self._tuple_size

    @property
    def is_full(self) -> bool:
        return self.num_tuples >= self._capacity

    # -- tuple access ---------------------------------------------------------
    def slot_offset(self, slot: int) -> int:
        """Byte offset of tuple ``slot`` inside the page buffer."""
        return HEADER_SIZE + slot * self._tuple_size

    def insert(self, encoded: bytes) -> int:
        """Append an already-encoded tuple; returns its slot number."""
        if len(encoded) != self._tuple_size:
            raise StorageError(
                f"encoded tuple is {len(encoded)} bytes, expected "
                f"{self._tuple_size}"
            )
        slot = self.num_tuples
        if slot >= self._capacity:
            raise PageFullError("page is full")
        off = self.slot_offset(slot)
        self.data[off:off + self._tuple_size] = encoded
        self.num_tuples = slot + 1
        return slot

    def insert_row(self, row: Sequence[Any]) -> int:
        """Encode and append a Python row; returns its slot number."""
        return self.insert(self.schema.encode(row))

    def read(self, slot: int) -> tuple:
        """Decode the tuple in ``slot`` into Python values."""
        if not 0 <= slot < self.num_tuples:
            raise StorageError(f"slot {slot} out of range")
        return self.schema.decode(self.data, self.slot_offset(slot))

    def read_field(self, slot: int, column: int) -> Any:
        """Decode one field of one tuple (direct offset access)."""
        if not 0 <= slot < self.num_tuples:
            raise StorageError(f"slot {slot} out of range")
        return self.schema.decode_field(
            self.data, self.slot_offset(slot), column
        )

    def rows(self) -> Iterator[tuple]:
        """Decode every tuple on the page, in slot order."""
        decode = self.schema.decode
        offset = HEADER_SIZE
        size = self._tuple_size
        for _ in range(self.num_tuples):
            yield decode(self.data, offset)
            offset += size

    def clear(self) -> None:
        """Logically empty the page (slots become reusable)."""
        self.num_tuples = 0

    def __len__(self) -> int:
        return self.num_tuples

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Page({self.num_tuples}/{self._capacity} tuples)"
