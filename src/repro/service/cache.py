"""A cost-aware plan/code cache with hit statistics and invalidation.

Entries are opaque to the cache (the service stores compiled HIQUE
queries for the code-generating engines and normalized ASTs for the
interpreting ones); the cache contributes recency ordering, bounded
capacity, per-entry accounting, and thread safety.  Statistics make the
paper's amortization argument measurable: every hit records how many
seconds of preparation (Table III's parse + optimize + generate +
compile) the cache just avoided.

Admission is **cost-aware** rather than pure LRU: when the cache is
full, the evicted entry is the one with the lowest
``preparation_seconds_saved / size_bytes`` score — an entry that has
repeatedly saved expensive compilation earns its bytes; one that never
hit scores zero regardless of recency.  Ties (most commonly a set of
never-hit entries) break in LRU order, so the cold end still turns
over oldest-first.

All per-entry counters — ``hits`` and ``seconds_saved`` — are mutated
exclusively under the cache lock, in the same critical section that
refreshes recency, so concurrent sessions never drop an increment.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Human-readable admission policy, surfaced through ``CacheStats``.
POLICY = "cost-aware (seconds saved / size, LRU tie-break)"


@dataclass
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    #: Preparation seconds the hits avoided (sum of each hit entry's cost).
    seconds_saved: float
    #: The admission/eviction policy in force.
    policy: str = POLICY

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CacheEntry:
    """One cached plan plus its accounting."""

    key: Hashable
    value: Any
    #: What it cost to build this entry (seconds of preparation); each
    #: hit adds this to the cache-wide ``seconds_saved`` figure.
    cost_seconds: float = 0.0
    #: Footprint estimate (generated + compiled bytes for code plans).
    size_bytes: int = 1
    hits: int = 0
    #: Preparation seconds this entry's hits have avoided so far.
    seconds_saved: float = 0.0
    #: ``(table, version)`` pairs the cached value was built against
    #: (lowercased names).  A DML mutation invalidates exactly the
    #: entries whose dependency set names the mutated table; an empty
    #: set means the entry is version-independent (DML plans themselves)
    #: and only wholesale DDL invalidation removes it.
    deps: tuple[tuple[str, int], ...] = ()

    def depends_on(self, table: str) -> bool:
        return any(name == table for name, _ in self.deps)

    @property
    def score(self) -> float:
        """The admission score: seconds saved per byte retained."""
        return self.seconds_saved / max(self.size_bytes, 1)


class PlanCache:
    """A thread-safe, cost-aware cache keyed on normalized statements.

    ``capacity`` bounds the number of entries; inserting into a full
    cache evicts the lowest-scoring entry (see :data:`POLICY`), with
    LRU breaking ties.  ``invalidate()`` drops entries wholesale — the
    service calls it from the catalogue's change listener, since any
    DDL or statistics refresh can change both plan shape and plan
    choice.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._seconds_saved = 0.0

    # -- core operations ---------------------------------------------------------
    def get(self, key: Hashable) -> CacheEntry | None:
        """The entry under ``key`` (refreshed to most recent), or None.

        Counts toward hit/miss statistics — call this once per
        *execution*, and :meth:`peek` for introspection, or the stats
        overstate how much preparation the cache avoided.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            # Recency, the per-entry counters and the cache-wide tally
            # all update in this one critical section, so concurrent
            # sessions cannot interleave and drop increments.
            self._entries.move_to_end(key)
            entry.hits += 1
            entry.seconds_saved += entry.cost_seconds
            self._hits += 1
            self._seconds_saved += entry.cost_seconds
            return entry

    def peek(self, key: Hashable) -> CacheEntry | None:
        """Like :meth:`get` (refreshes recency) but without touching
        hit/miss accounting."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(
        self,
        key: Hashable,
        value: Any,
        cost_seconds: float = 0.0,
        size_bytes: int = 1,
        deps: tuple[tuple[str, int], ...] = (),
    ) -> CacheEntry:
        """Insert (or replace) an entry, evicting low-score entries if
        full.  The entry being inserted is never its own victim."""
        with self._lock:
            entry = CacheEntry(
                key=key,
                value=value,
                cost_seconds=cost_seconds,
                size_bytes=size_bytes,
                deps=deps,
            )
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                del self._entries[self._pick_victim(exclude=key)]
                self._evictions += 1
            return entry

    def _pick_victim(self, exclude: Hashable) -> Hashable:
        """Lowest score wins eviction; LRU order breaks ties.

        Caller holds the lock.  Iterating LRU→MRU with a strict ``<``
        keeps the least recently used of any scoring tie, which
        degenerates to classic LRU while no entry has ever hit.
        """
        victim_key = None
        victim_score = None
        for key, entry in self._entries.items():  # LRU → MRU
            if key == exclude:
                continue
            score = entry.score
            if victim_score is None or score < victim_score:
                victim_key, victim_score = key, score
        assert victim_key is not None  # capacity >= 1 and exclude is MRU
        return victim_key

    def invalidate(self, key: Hashable | None = None) -> int:
        """Drop one entry (or all of them); returns how many were dropped."""
        with self._lock:
            if key is not None:
                dropped = 1 if self._entries.pop(key, None) is not None else 0
            else:
                dropped = len(self._entries)
                self._entries.clear()
            self._invalidations += dropped
            return dropped

    def invalidate_table(self, table: str) -> int:
        """Drop entries depending on ``table`` (lowercased name).

        The fine-grained DML path: a mutation of table A removes plans
        built against A's old version and leaves every other entry —
        including version-independent DML plans — untouched.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.depends_on(table)
            ]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    # -- introspection -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def entries(self) -> list[CacheEntry]:
        """Entries in LRU→MRU order (snapshot; safe to iterate)."""
        with self._lock:
            return list(self._entries.values())

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                seconds_saved=self._seconds_saved,
            )
