"""The query service layer: prepared statements over a plan/code cache.

The paper's Table III quantifies what it costs to *prepare* a query —
parse, optimize, generate and compile — and observes that production
systems amortize it by storing "pre-compiled and pre-optimized versions
of frequently or recently issued queries".  This package is that
amortization, grown into a serving front-end:

* :class:`~repro.service.cache.PlanCache` — an LRU over compiled plans,
  keyed on *normalized* SQL (literals parameterized away), with
  per-entry hit counts and invalidation wired to catalogue changes;
* :class:`~repro.service.statement.PreparedStatement` — a client handle
  that executes one statement shape repeatedly with varying parameters;
* :class:`~repro.service.service.QueryService` — the session front-end:
  ``prepare()`` / ``execute(sql, params)`` / ``execute_many()``, a
  bounded worker pool for concurrent sessions, and admission and cache
  statistics.
"""

from repro.service.cache import CacheStats, PlanCache
from repro.service.service import QueryService, ServiceStats
from repro.service.statement import PreparedStatement

__all__ = [
    "CacheStats",
    "PlanCache",
    "PreparedStatement",
    "QueryService",
    "ServiceStats",
]
