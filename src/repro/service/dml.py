"""DML execution: bound INSERT/UPDATE/DELETE against the storage layer.

DML is engine-independent — every front-end (SQL shell, prepared
statements, TCP server) routes mutations here.  The caller holds the
catalog's write gate, so execution never races a reader: a query either
sees the table wholly before or wholly after the mutation, and the
table's version epoch moves *before* the gate is released, which is
what makes version-keyed caches (plans, staged intermediates, DSM
columns) coherent without further locking.

Expression evaluation reuses the plan layer's closures
(:func:`~repro.plan.expressions.make_evaluator` /
:func:`make_conjunction`), so ``?`` parameters behave exactly as they
do in SELECT — including ``SET a = a + ?`` reading the pre-update row.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConstraintError, StorageError
from repro.plan.expressions import make_conjunction, make_evaluator
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.sql.bound import (
    BoundArithmetic,
    BoundDelete,
    BoundInsert,
    BoundParameter,
    BoundStatement,
    BoundUpdate,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table

__all__ = [
    "execute_dml",
    "dml_param_dtypes",
    "dml_table",
]


def dml_table(bound: BoundInsert | BoundUpdate | BoundDelete) -> Table:
    """The single table a bound DML statement mutates."""
    return bound.table


def dml_param_dtypes(bound: BoundStatement) -> dict[int, Any]:
    """Parameter index → resolved type across a bound DML statement.

    Mirrors :func:`repro.sql.bound.param_dtypes_of` for queries; the
    service uses it to validate execute-time parameter vectors.
    """
    dtypes: dict[int, Any] = {}

    def walk(expr: Any) -> None:
        if isinstance(expr, BoundParameter):
            dtypes[expr.index] = expr.dtype
        elif isinstance(expr, BoundArithmetic):
            walk(expr.left)
            walk(expr.right)

    if isinstance(bound, BoundInsert):
        for row in bound.rows:
            for expr in row:
                walk(expr)
        return dtypes
    if isinstance(bound, BoundUpdate):
        for assignment in bound.assignments:
            walk(assignment.expr)
    for comparison in bound.where:
        walk(comparison.left)
        walk(comparison.right)
    return dtypes


def _table_layout(binding: str, table: Table) -> ColumnLayout:
    return ColumnLayout(
        ColumnSlot(binding, column.name, column.dtype)
        for column in table.schema
    )


def execute_dml(
    catalog: Catalog,
    bound: BoundInsert | BoundUpdate | BoundDelete,
    params: Sequence[Any] = (),
) -> int:
    """Run one bound DML statement; returns the affected-row count.

    The caller must hold ``catalog.gate.write()``.  When any row
    actually changed, the table version has already advanced and
    :meth:`Catalog.notify_dml` has fired before this returns, so
    listeners (plan cache, intermediate cache, insights) observe the
    new epoch while the gate is still held.
    """
    before = bound.table.version
    try:
        if isinstance(bound, BoundInsert):
            return _execute_insert(bound, params)
        if isinstance(bound, BoundUpdate):
            return _execute_update(bound, params)
        if isinstance(bound, BoundDelete):
            return _execute_delete(bound, params)
        raise ConstraintError(f"not a DML statement: {bound!r}")
    finally:
        # Notify on *any* version movement — including a failed UPDATE
        # that rewrote some pages before erroring — so caches keyed on
        # the old epoch never survive a partial mutation.
        if bound.table.version != before:
            catalog.notify_dml(bound.table.name)


def _execute_insert(bound: BoundInsert, params: Sequence[Any]) -> int:
    table = bound.table
    layout = _table_layout(table.name.lower(), table)
    rows: list[tuple] = []
    for exprs in bound.rows:
        evaluators = [
            make_evaluator(expr, layout, params) for expr in exprs
        ]
        rows.append(tuple(evaluate(()) for evaluate in evaluators))
    # Validate every row encodes before touching the heap, so a value
    # that does not fit (string wider than its CHAR column) rejects the
    # whole statement instead of applying a prefix of it.
    encode = table.schema.encode
    try:
        for row in rows:
            encode(row)
    except (StorageError, TypeError, ValueError) as exc:
        raise ConstraintError(str(exc)) from exc
    return table.append_rows(rows)


def _execute_update(bound: BoundUpdate, params: Sequence[Any]) -> int:
    table = bound.table
    layout = _table_layout(bound.binding, table)
    predicate = make_conjunction(bound.where, layout, params)
    assignments = [
        (a.position, make_evaluator(a.expr, layout, params))
        for a in bound.assignments
    ]

    def updater(row: tuple) -> list[Any]:
        values = list(row)
        for position, evaluate in assignments:
            values[position] = evaluate(row)
        return values

    try:
        return table.update_rows(predicate, updater)
    except (StorageError, TypeError, ValueError) as exc:
        raise ConstraintError(str(exc)) from exc


def _execute_delete(bound: BoundDelete, params: Sequence[Any]) -> int:
    table = bound.table
    layout = _table_layout(bound.binding, table)
    predicate = make_conjunction(bound.where, layout, params)
    return table.delete_rows(predicate)
