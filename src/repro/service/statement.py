"""Client-side handle for one prepared statement shape."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ServiceError
from repro.sql import ast
from repro.sql.parameters import ParameterizedQuery
from repro.storage.types import date_to_ordinal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import QueryService


@dataclass
class PreparedStatement:
    """One statement shape, prepared once and executable many times.

    Holds everything needed to re-resolve the statement against the
    service's plan cache: if the cached plan was evicted or invalidated
    (DDL, ``analyze``), the next :meth:`execute` transparently pays
    preparation again — callers never observe staleness.
    """

    service: "QueryService" = field(repr=False)
    engine_kind: str
    #: The SQL text the statement was prepared from.
    sql: str
    #: Normalized form (literals parameterized away) — the cache key.
    key: str
    parameterized: ParameterizedQuery = field(repr=False)

    @property
    def num_params(self) -> int:
        """Parameters the statement expects at execute time."""
        return self.parameterized.num_params

    @property
    def is_dml(self) -> bool:
        """True for INSERT/UPDATE/DELETE shapes (engine-independent)."""
        return not isinstance(self.parameterized.query, ast.Query)

    @property
    def default_params(self) -> tuple[Any, ...]:
        """Values extracted by literal parameterization (may be empty)."""
        return self.parameterized.values

    @property
    def output_names(self) -> list[str]:
        """Column names of the statement's result rows."""
        return self.service.statement_output_names(self)

    def resolve_params(
        self,
        params: Sequence[Any] | None,
        allow_override: bool = True,
    ) -> tuple:
        """The effective parameter vector for one execution.

        Explicit-``?`` statements require caller parameters.  A
        statement normalized from literals defaults to its extracted
        constants; through this handle (``allow_override``) a caller
        may rebind them with a vector of the same arity — the whole
        point of preparing the shape.  One-shot ``service.execute``
        passes ``allow_override=False``: there, supplying params for a
        query with no ``?`` placeholders is almost certainly a caller
        bug, not an intent to override inlined constants.
        """
        if params is None:
            defaults = self.parameterized.values
            if self.num_params == 0:
                return defaults
            # The extracted constants only stand in for the caller's
            # vector when they cover *every* parameter.  A statement
            # mixing explicit ``?`` placeholders with parameterized
            # literals would otherwise execute with a short vector —
            # generated code indexing past its end, or binding the
            # wrong value to the wrong slot.
            if defaults and len(defaults) == self.num_params:
                return defaults
            if defaults:
                raise ServiceError(
                    f"statement expects {self.num_params} parameter(s) "
                    f"but literal parameterization extracted only "
                    f"{len(defaults)}; pass the full params=(...) vector"
                )
            raise ServiceError(
                f"statement expects {self.num_params} parameter(s); "
                f"pass params=(...)"
            )
        if self.parameterized.values and not allow_override:
            raise ServiceError(
                "query has no ? placeholders; inline the values or "
                "prepare() the statement to rebind its constants"
            )
        # DATE columns store day ordinals, so a date object can only
        # mean its ordinal — coerce here, as table loading does.
        params = tuple(
            date_to_ordinal(value)
            if isinstance(value, datetime.date)
            else value
            for value in params
        )
        if len(params) != self.num_params:
            raise ServiceError(
                f"statement expects {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        return params

    # -- execution ---------------------------------------------------------------
    def execute(self, params: Sequence[Any] | None = None) -> list[tuple]:
        """Run the statement with one parameter vector."""
        return self.service.execute_statement(self, params)

    def execute_many(
        self, param_sets: Sequence[Sequence[Any]]
    ) -> list[list[tuple]]:
        """Run the statement once per parameter vector, in order."""
        return [self.execute(params) for params in param_sets]
