"""The concurrent session front-end over the plan/code cache.

A :class:`QueryService` sits between clients and the engines:

* it normalizes incoming statements (literal parameterization), so that
  ``WHERE a = 1`` and ``WHERE a = 2`` share one compiled plan;
* it keeps the :class:`~repro.service.cache.PlanCache` of prepared
  queries — for the code-generating engines the cached value is the
  fully compiled module, executed with a fresh parameter vector each
  time, which skips all four Table III preparation stages on a hit;
* it serves the interpreting comparison engines through parameter
  substitution, so every engine kind answers prepared statements with
  identical rows;
* it fronts concurrent sessions with a bounded worker pool and
  admission accounting.

Read queries execute **concurrently**: the storage spine (buffer pool,
page files, catalogue) is thread-safe for readers, so engine execution
runs under the *read* side of the catalogue's
:class:`~repro.parallel.latch.ReadWriteLatch` — any number of sessions
scan at once, overlapping their I/O waits — while writers (DDL, bulk
loads, ``analyze``) take the exclusive side.  Only plan *preparation*
(optimize + generate + compile on a cache miss) is serialized, by a
per-statement build lock, so a thundering herd on one cold statement
compiles it once instead of N times while distinct cold statements
still prepare concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.engine import HiqueEngine, PreparedQuery
from repro.errors import (
    AdmissionError,
    CatalogError,
    ServiceError,
    WatchdogTimeout,
)
from repro.obs import current_span, default_observability
from repro.plan.optimizer import Optimizer
from repro.service.cache import CacheStats, PlanCache
from repro.service.dml import dml_param_dtypes, execute_dml
from repro.service.statement import PreparedStatement
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.bound import param_dtypes_of
from repro.sql.parameters import (
    ParameterizedQuery,
    parameterize_statement,
)
from repro.sql.parser import parse_statement


@dataclass
class ServiceStats:
    """Point-in-time service counters (admission + cache)."""

    queries: int
    #: Raw-text fast-path hits: repeats of an already-seen statement
    #: text skip even the parse step.
    text_hits: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    pending: int
    cache: CacheStats
    #: Effective intra-query placement the database's engines dispatch
    #: under — ``"thread"``/``"process"`` when one backend is forced,
    #: ``"auto"`` when the adaptive cost model routes each batch (mixed
    #: thread/process inside one query).  Operators reading service
    #: stats see the substrate their sessions' parallel phases actually
    #: run on, not just the legacy ``executor`` knob.
    executor: str = "thread"
    #: Queries the stall watchdog aborted (a wedged parallel task).
    #: Surfaced here *and* per digest, so a wedged statement is visible
    #: in per-statement accounting, not only as a metrics event.
    watchdog_abandonments: int = 0


@dataclass
class _CachedPlan:
    """What the plan cache stores for one (engine, statement) pair."""

    engine_kind: str
    key: str
    #: Compiled query for the code-generating engines; None otherwise.
    prepared: PreparedQuery | None = None
    #: Normalized AST for the interpreting engines.
    query: ast.Query | None = field(default=None, repr=False)
    #: Bound-and-optimized physical plan for the interpreting engines —
    #: parameters stay symbolic and are supplied per execution, so
    #: repeats skip parse + bind + optimize exactly like codegen plans
    #: skip the four Table III stages.
    physical: Any = field(default=None, repr=False)
    #: Bound DML statement (INSERT/UPDATE/DELETE); None for queries.
    bound: Any = field(default=None, repr=False)
    #: Parameter index → bound type, for execute-time value checking.
    param_dtypes: dict = field(default_factory=dict, repr=False)
    #: ``(table, version)`` pairs this plan was built against; empty for
    #: version-independent plans (DML re-reads the table at execution).
    deps: tuple[tuple[str, int], ...] = ()


#: Engine kinds served by parameterized generated code.
_CODEGEN_KINDS = ("hique", "hique-o0")


def _statement_tables(statement: PreparedStatement) -> tuple[str, ...]:
    """Lowercased table names a statement touches (from its AST)."""
    query = statement.parameterized.query
    if isinstance(query, ast.Query):
        return tuple(sorted({t.name.lower() for t in query.tables}))
    return (query.table.lower(),)


def _check_param_values(param_dtypes: dict, values: tuple) -> None:
    """Reject values whose type family contradicts the bound plan.

    A compiled plan was type-checked against the statement's bound
    parameter types; executing it with, say, a string where an INT was
    bound would either raise a raw TypeError from generated code or —
    worse — compare unequal everywhere and silently return no rows.
    The interpreting engines need no such check: they re-bind per call.
    """
    for index, value in enumerate(values):
        dtype = param_dtypes.get(index)
        if dtype is None:
            continue
        if dtype.is_string:
            if not isinstance(value, str):
                raise ServiceError(
                    f"parameter ?{index + 1} is bound as {dtype.name}; "
                    f"got {type(value).__name__} {value!r}"
                )
        elif isinstance(value, str) or isinstance(value, bool):
            raise ServiceError(
                f"parameter ?{index + 1} is bound as {dtype.name}; "
                f"got {type(value).__name__} {value!r}"
                + (
                    " (pass a datetime.date or a day ordinal)"
                    if dtype.code == "date"
                    else ""
                )
            )


class QueryService:
    """Prepared-statement service over a database's engines.

    ``database`` is any object exposing ``catalog`` and
    ``engine(kind)`` — in practice :class:`repro.api.Database`, which
    also owns the service's lifecycle.
    """

    def __init__(
        self,
        database,
        default_engine: str = "hique",
        cache_capacity: int = 64,
        max_workers: int = 4,
        max_pending: int | None = None,
    ):
        self.database = database
        self.default_engine = default_engine
        self.cache = PlanCache(cache_capacity)
        self.max_workers = max_workers
        self.max_pending = (
            max_pending if max_pending is not None else max_workers * 8
        )

        #: (engine_kind, raw sql) → (cache key, ParameterizedQuery);
        #: bounded so adversarial literal-varying traffic cannot grow it
        #: without limit.
        self._text_index: "OrderedDict[tuple[str, str], tuple[str, ParameterizedQuery]]" = (
            OrderedDict()
        )
        self._text_capacity = max(cache_capacity * 8, 128)

        #: Per-statement build locks: a thundering herd on one cold
        #: statement compiles it once, while *distinct* cold statements
        #: build concurrently.  Entries are dropped after the build, so
        #: the map stays as small as the set of in-flight preparations.
        self._build_locks: dict[tuple, threading.Lock] = {}
        #: Readers-writer gate shared with the catalogue: queries take
        #: the read side, DDL/loads/analyze the write side.
        self._gate = database.catalog.gate
        self._state_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

        self._queries = 0
        self._text_hits = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._pending = 0
        self._watchdog = 0

        #: Workload insights (digest store + slow-query log), owned by
        #: the database; None for bare test harnesses without one.
        self.insights = getattr(database, "insights_store", None)
        #: Per-thread scratch: the plan-cache outcome of the execution
        #: running on this thread, captured even when tracing is off so
        #: the digest store can count cache hits.
        self._local = threading.local()

        #: Observability pair shared with the owning database (falls
        #: back to the process-wide default for bare test harnesses).
        self.obs = getattr(database, "obs", None) or default_observability()
        #: Per-engine query latency histograms, cached so the hot path
        #: pays one dict lookup instead of a registry get-or-create.
        self._query_hist: dict[str, Any] = {}
        self._queue_hist = self.obs.registry.histogram(
            "repro_session_queue_seconds"
        )
        self.obs.registry.register_collector(self._collect_metrics)

        self._listener = self._on_catalog_change
        database.catalog.add_listener(self._listener)

    # -- statement resolution ------------------------------------------------------
    def prepare(
        self, sql: str, engine: str | None = None
    ) -> PreparedStatement:
        """Normalize, plan, generate and compile one statement shape.

        The compiled plan lands in the service cache; the returned
        handle executes it with varying parameters.
        """
        kind = engine or self.default_engine
        statement = self._resolve(sql, kind)
        self._ensure_plan(statement, count=False)
        return statement

    def _resolve(self, sql: str, kind: str) -> PreparedStatement:
        """Raw SQL text → statement, via the text fast path if possible."""
        text_key = (kind, sql)
        with self._state_lock:
            alias = self._text_index.get(text_key)
            if alias is not None:
                self._text_index.move_to_end(text_key)
                self._text_hits += 1
                key, parameterized = alias
                return PreparedStatement(
                    service=self,
                    engine_kind=kind,
                    sql=sql,
                    key=key,
                    parameterized=parameterized,
                )
        parameterized = parameterize_statement(parse_statement(sql))
        with self._state_lock:
            self._text_index[text_key] = (parameterized.key, parameterized)
            while len(self._text_index) > self._text_capacity:
                self._text_index.popitem(last=False)
        return PreparedStatement(
            service=self,
            engine_kind=kind,
            sql=sql,
            key=parameterized.key,
            parameterized=parameterized,
        )

    def _ensure_plan(
        self, statement: PreparedStatement, count: bool = True
    ) -> _CachedPlan:
        """The cached plan for a statement, building it on a miss.

        Acquires the read gate around lookup and build; callers that
        also *execute* the plan use :meth:`_plan_under_gate` inside
        their own read scope instead (the gate is not reentrant).
        """
        with self._gate.read():
            return self._plan_under_gate(statement, count)

    def _plan_under_gate(
        self, statement: PreparedStatement, count: bool = True
    ) -> _CachedPlan:
        """Lookup/build while the caller holds the read gate.

        Because catalogue writers invalidate the cache *before*
        releasing the write gate, an entry found here cannot be stale —
        holding the gate across lookup and execution is what makes a
        cached plan safe against concurrent DDL.

        The key carries the parameter type signature besides the
        normalized SQL: ``WHERE c = 'x1'`` and ``WHERE c = 3`` render
        identically but must bind (and possibly fail) separately.

        ``count`` ties hit/miss statistics to *executions*: the execute
        path counts, while prepare() and name introspection peek — so
        "preparation saved" means seconds an execution actually
        avoided, not how often the entry was looked at.
        """
        cache_key = (
            # DML plans are engine-independent: every front-end kind
            # shares one bound statement per shape.
            "dml" if statement.is_dml else statement.engine_kind,
            statement.key,
            statement.parameterized.type_signature,
        )
        entry = (
            self.cache.get(cache_key)
            if count
            else self.cache.peek(cache_key)
        )
        if entry is not None and not self._deps_current(entry.value):
            # Backstop for mutations that bypassed the catalogue's
            # listeners (direct Table writes in embedding code): the
            # recorded (table, version) deps are re-validated before an
            # entry is trusted.  The stale hit was already counted —
            # acceptable skew for a path listeners normally keep cold.
            self.cache.invalidate(cache_key)
            entry = None
        if count:
            self._local.cache_hit = entry is not None
            span = current_span()
            if span is not None:
                span.set(cache_hit=entry is not None)
        if entry is not None:
            return entry.value
        with self._state_lock:
            lock = self._build_locks.setdefault(cache_key, threading.Lock())
        try:
            with lock:
                # A racer may have built the plan while we waited; this
                # thread saved nothing, so peek rather than count a hit.
                entry = self.cache.peek(cache_key)
                if entry is not None:
                    return entry.value
                plan, cost = self._build_plan(statement)
                if plan.prepared is not None:
                    size = (
                        plan.prepared.compiled.source_bytes
                        + plan.prepared.compiled.compiled_bytes
                    )
                else:
                    size = len(statement.key.encode("utf-8"))
                self.cache.put(
                    cache_key,
                    plan,
                    cost_seconds=cost,
                    size_bytes=size,
                    deps=plan.deps,
                )
        finally:
            with self._state_lock:
                self._build_locks.pop(cache_key, None)
        return plan

    def _deps_current(self, plan: _CachedPlan) -> bool:
        """Whether every recorded (table, version) dep is still live."""
        for name, version in plan.deps:
            try:
                table = self.database.catalog.table(name)
            except CatalogError:
                return False
            if table.version != version:
                return False
        return True

    @staticmethod
    def _bound_deps(tables) -> tuple[tuple[str, int], ...]:
        """(table, version) deps from a bound query's FROM entries."""
        return tuple(
            (bt.table.name.lower(), bt.table.version) for bt in tables
        )

    def _build_plan(
        self, statement: PreparedStatement
    ) -> tuple[_CachedPlan, float]:
        # Caller holds the read gate (or the write gate for DML) and
        # the statement's build lock.
        kind = statement.engine_kind
        parameterized = statement.parameterized
        param_dtypes = {
            i: dtype
            for i, dtype in enumerate(parameterized.dtypes)
            if dtype is not None
        }
        if statement.is_dml:
            # Binding resolves the target table and type-checks values;
            # the bound statement is version-independent (execution
            # reads live pages), so only wholesale DDL invalidation
            # removes it — a DML plan survives its own mutations.
            started = time.perf_counter()
            bound = Binder(self.database.catalog).bind_statement(
                parameterized.query, param_dtypes=param_dtypes
            )
            plan = _CachedPlan(
                engine_kind="dml",
                key=statement.key,
                bound=bound,
                param_dtypes=dml_param_dtypes(bound),
                deps=(),
            )
            return plan, time.perf_counter() - started
        if kind in _CODEGEN_KINDS:
            engine: HiqueEngine = self.database.engine(kind)
            prepared = engine.prepare(
                statement.key,
                query=parameterized.query,
                param_dtypes=param_dtypes,
                use_cache=False,
            )
            return (
                _CachedPlan(
                    engine_kind=kind,
                    key=statement.key,
                    prepared=prepared,
                    param_dtypes=param_dtypes_of(prepared.bound),
                    deps=self._bound_deps(prepared.bound.tables),
                ),
                prepared.timings.total_seconds,
            )
        # Interpreting engines: bind and optimize once, with parameters
        # kept symbolic.  Repeated executions supply fresh values into
        # the cached physical plan — the same amortization the codegen
        # path gets, minus compilation.
        started = time.perf_counter()
        engine = self.database.engine(kind)
        bound = engine.binder.bind(
            parameterized.query, param_dtypes=param_dtypes
        )
        physical = Optimizer(
            self.database.catalog, engine.planner_config
        ).plan(bound)
        plan = _CachedPlan(
            engine_kind=kind,
            key=statement.key,
            query=parameterized.query,
            physical=physical,
            param_dtypes=param_dtypes_of(bound),
            deps=self._bound_deps(bound.tables),
        )
        return plan, time.perf_counter() - started

    # -- execution -----------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        engine: str | None = None,
    ) -> list[tuple]:
        """One-shot execution through the cache.

        Equivalent to ``prepare(sql, engine).execute(params)`` but a
        single call, which is how ad-hoc traffic benefits from the
        cache without managing statement handles.
        """
        kind = engine or self.default_engine
        statement = self._resolve(sql, kind)
        return self.execute_statement(statement, params, allow_override=False)

    def execute_statement(
        self,
        statement: PreparedStatement,
        params: Sequence[Any] | None = None,
        allow_override: bool = True,
    ) -> list[tuple]:
        """Run a prepared statement with one parameter vector."""
        # ``close()`` rejects *new* work but drains the session pool:
        # a query that won admission before the close must complete,
        # so the pool's own workers (marked via the thread-local) pass.
        if self._closed and not getattr(self._local, "admitted", False):
            raise ServiceError("query service is closed")
        values = statement.resolve_params(params, allow_override)
        with self._state_lock:
            self._queries += 1
        kind = statement.engine_kind
        insights = self.insights
        record = insights is not None and insights.enabled
        pages_before: tuple[int, int] | None = None
        if record:
            self._local.cache_hit = None
            pages_before = self._buffer_pages()
        span_obj = None
        rows_out: list[tuple] | None = None
        error: BaseException | None = None
        started = time.perf_counter()
        try:
            with self.obs.tracer.span(
                "query",
                "service",
                engine=kind,
                statement=statement.key[:200],
            ) as span:
                span_obj = span
                if statement.is_dml:
                    rows = self._execute_dml_statement(statement, values)
                elif kind in _CODEGEN_KINDS:
                    # One read scope spans plan lookup AND execution, so
                    # a concurrent DDL cannot invalidate the plan in
                    # between (its compiled module embeds table objects).
                    engine: HiqueEngine = self.database.engine(kind)
                    with self._gate.read():
                        plan = self._plan_under_gate(statement)
                        _check_param_values(plan.param_dtypes, values)
                        rows = engine.execute_prepared(
                            plan.prepared, params=values
                        )
                else:
                    rows = self._execute_interpreted(
                        kind, statement, values
                    )
                if span is not None:
                    span.set(rows=len(rows))
                rows_out = rows
                return rows
        except BaseException as exc:
            error = exc
            raise
        finally:
            elapsed = time.perf_counter() - started
            self._query_histogram(kind).observe(elapsed)
            if isinstance(error, WatchdogTimeout):
                with self._state_lock:
                    self._watchdog += 1
            if record:
                self._record_insights(
                    insights,
                    statement,
                    kind,
                    elapsed,
                    rows_out,
                    error,
                    span_obj,
                    pages_before,
                )

    def _buffer_pages(self) -> tuple[int, int] | None:
        """(hits, misses) of the database's buffer pool, if reachable."""
        buffer = getattr(self.database, "buffer", None)
        if buffer is None:
            return None
        stats = buffer.stats
        return stats.hits, stats.misses

    def _record_insights(
        self,
        insights,
        statement: PreparedStatement,
        kind: str,
        elapsed: float,
        rows: list[tuple] | None,
        error: BaseException | None,
        span,
        pages_before: tuple[int, int] | None,
    ) -> None:
        """Fold one finished execution into the workload insights.

        Buffer traffic comes from the span tree when tracing recorded
        one (exact per query); otherwise from the buffer pool's global
        counters, whose delta is exact for a single session and only
        approximate under concurrent queries.  Never raises: a failure
        here is counted, not allowed to fail the observed query.
        """
        try:
            pages_hit = pages_missed = 0
            if span is not None:
                for node in span.walk():
                    pages_hit += node.pages_hit
                    pages_missed += node.pages_missed
            elif pages_before is not None:
                pages_after = self._buffer_pages()
                if pages_after is not None:
                    pages_hit = max(0, pages_after[0] - pages_before[0])
                    pages_missed = max(
                        0, pages_after[1] - pages_before[1]
                    )
            backend = ""
            if error is None:
                getter = getattr(self.database, "last_exec_stats", None)
                stats = getter(kind) if callable(getter) else None
                if stats is not None:
                    backend = (
                        stats.backend if stats.parallel else "serial"
                    )
            insights.record(
                kind,
                statement.key,
                elapsed,
                rows=len(rows) if rows is not None else 0,
                error=error,
                watchdog=isinstance(error, WatchdogTimeout),
                cache_hit=getattr(self._local, "cache_hit", None),
                pages_hit=pages_hit,
                pages_missed=pages_missed,
                backend=backend,
                trace=span.trace if span is not None else None,
                tables=_statement_tables(statement),
            )
        except Exception:
            self.obs.registry.counter(
                "repro_insights_record_errors_total"
            ).inc()

    def _query_histogram(self, kind: str):
        hist = self._query_hist.get(kind)
        if hist is None:
            hist = self.obs.registry.histogram(
                "repro_query_seconds", engine=kind
            )
            self._query_hist[kind] = hist
        return hist

    def _execute_interpreted(
        self, kind: str, statement: PreparedStatement, values: tuple
    ) -> list[tuple]:
        """Run an interpreting engine's cached physical plan.

        One read scope spans plan lookup and execution — the cached
        plan embeds table objects, so a concurrent writer must not
        slip between the two.  Parameters stay symbolic in the plan
        and are supplied per call, mirroring the codegen path.
        """
        engine = self.database.engine(kind)
        with self._gate.read():
            plan = self._plan_under_gate(statement)
            _check_param_values(plan.param_dtypes, values)
            return engine.execute_plan(plan.physical, params=values)

    def _execute_dml_statement(
        self, statement: PreparedStatement, values: tuple
    ) -> list[tuple]:
        """Run one DML statement under the catalogue's write gate.

        The result is a single ``(rows_affected,)`` row, uniform across
        every front-end.  Plan lookup happens under the same exclusive
        scope as execution — cheap (DML plans are just bound ASTs) and
        race-free: the version epoch moves and the listeners fire
        before the gate is released.
        """
        catalog = self.database.catalog
        with catalog.exclusive():
            plan = self._plan_under_gate(statement)
            _check_param_values(plan.param_dtypes, values)
            count = execute_dml(catalog, plan.bound, values)
        return [(count,)]

    def execute_many(
        self,
        sql: str,
        param_sets: Sequence[Sequence[Any]],
        engine: str | None = None,
    ) -> list[list[tuple]]:
        """Prepare once, execute once per parameter vector, in order."""
        statement = self.prepare(sql, engine)
        return statement.execute_many(param_sets)

    def statement_output_names(
        self, statement: PreparedStatement
    ) -> list[str]:
        """Column names of a statement's result, from the cached plan."""
        plan = self._ensure_plan(statement, count=False)
        if plan.bound is not None:
            return ["rows_affected"]
        if plan.prepared is not None:
            return plan.prepared.plan.output_names
        return plan.physical.output_names

    def physical_plan(
        self,
        sql: str,
        engine: str | None = None,
        params: Sequence[Any] | None = None,
    ):
        """The physical plan a statement would execute (for EXPLAIN).

        Every engine kind now caches a parameterized plan, so this is
        the cached plan in both cases; ``params`` is accepted for
        interface stability but does not change the plan's shape.
        """
        kind = engine or self.default_engine
        statement = self._resolve(sql, kind)
        if statement.is_dml:
            raise ServiceError(
                "DML statements execute directly against storage; "
                "there is no physical plan to explain"
            )
        plan = self._ensure_plan(statement, count=False)
        if plan.prepared is not None:
            return plan.prepared.plan
        return plan.physical

    # -- concurrent sessions ---------------------------------------------------------
    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        engine: str | None = None,
    ) -> "Future[list[tuple]]":
        """Queue a query on the session pool; returns a future.

        Admission is bounded: once ``max_pending`` queries are in
        flight, further submissions raise
        :class:`~repro.errors.AdmissionError` instead of queuing without
        limit — backpressure a serving system must give its clients.
        """
        return self._submit_work(
            lambda: self.execute(sql, params, engine)
        )

    def submit_statement(
        self,
        statement: PreparedStatement,
        params: Sequence[Any] | None = None,
    ) -> "Future[list[tuple]]":
        """Queue one prepared-statement execution on the session pool.

        Same admission accounting and backpressure as :meth:`submit`,
        but over an already-prepared handle — the path a server
        front-end uses for per-connection prepared-statement reuse.
        """
        return self._submit_work(
            lambda: self.execute_statement(statement, params)
        )

    def _submit_work(self, work) -> "Future[list[tuple]]":
        if self._closed:
            raise ServiceError("query service is closed")
        with self._state_lock:
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise AdmissionError(
                    f"session pool saturated ({self._pending} pending, "
                    f"limit {self.max_pending})"
                )
            self._pending += 1
            self._submitted += 1
            pool = self._ensure_pool()
        try:
            future = pool.submit(
                self._run_session, work, time.perf_counter()
            )
        except RuntimeError as exc:
            # close() shut the pool down between our admission check and
            # the submit; release the slot we claimed.
            with self._state_lock:
                self._pending -= 1
                self._rejected += 1
            raise ServiceError("query service is closed") from exc
        future.add_done_callback(self._session_cancelled)
        return future

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Caller holds ``_state_lock``.
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-session",
            )
        return self._pool

    def _run_session(
        self, work, submitted_at: float | None = None
    ) -> list[tuple]:
        # Counters update in the worker, *before* the future resolves:
        # a caller returning from future.result() then observes stats()
        # already settled (a done-callback would race that read).
        if submitted_at is not None:
            self._queue_hist.observe(time.perf_counter() - submitted_at)
        # Mark this worker as running *admitted* work: close() drains
        # the pool, and a session that won admission before the close
        # must execute instead of failing "query service is closed".
        self._local.admitted = True
        try:
            result = work()
        except BaseException:
            with self._state_lock:
                self._pending -= 1
                self._failed += 1
            raise
        finally:
            self._local.admitted = False
        with self._state_lock:
            self._pending -= 1
            self._completed += 1
        return result

    def _session_cancelled(self, future: "Future[list[tuple]]") -> None:
        # Only a future cancelled while still queued skips _run_session;
        # its admission slot is released here.
        if future.cancelled():
            with self._state_lock:
                self._pending -= 1
                self._failed += 1

    # -- invalidation ------------------------------------------------------------------
    def _on_catalog_change(
        self, table: str | None, kind: str = "ddl"
    ) -> None:
        """A catalogue mutation happened: invalidate what it staled.

        DML moves one table's version epoch but changes no schema or
        statistics, so only the entries whose recorded deps name that
        table are dropped — plans over other tables, and the DML plans
        themselves (version-independent), survive, as does the raw-text
        index (text → shape normalization never goes stale).  DDL and
        ``analyze`` can change plan shape and plan choice, so they keep
        the wholesale policy (the paper's systems do the same — a
        prepared statement is re-optimized when its dependencies
        change).
        """
        if kind == "dml" and table is not None:
            self.cache.invalidate_table(table)
            if self.insights is not None:
                self.insights.on_catalog_change(table, kind="dml")
            return
        self.cache.invalidate()
        with self._state_lock:
            self._text_index.clear()
        # Digests describe executions of the invalidated plans; reset
        # them with the same blanket policy the plan cache uses.
        if self.insights is not None:
            self.insights.on_catalog_change(table, kind=kind)

    # -- introspection -----------------------------------------------------------------
    def _collect_metrics(self, registry) -> None:
        """Render-time sampler: one source for ``.cache``, the shell
        timing line and ``metrics_text()``.

        Samples the authoritative structs (admission counters,
        :class:`~repro.service.cache.CacheStats`, per-entry cache
        stats) instead of double-counting on every update.
        """
        stats = self.stats()
        registry.sample("repro_service_queries_total", stats.queries)
        registry.sample("repro_service_text_hits_total", stats.text_hits)
        registry.sample("repro_service_submitted_total", stats.submitted)
        registry.sample("repro_service_completed_total", stats.completed)
        registry.sample("repro_service_failed_total", stats.failed)
        registry.sample("repro_service_rejected_total", stats.rejected)
        registry.sample("repro_service_pending", stats.pending)
        registry.sample(
            "repro_service_watchdog_abandonments_total",
            stats.watchdog_abandonments,
        )
        cache = stats.cache
        registry.sample("repro_plan_cache_capacity", cache.capacity)
        registry.sample("repro_plan_cache_size", cache.size)
        registry.sample("repro_plan_cache_hits_total", cache.hits)
        registry.sample("repro_plan_cache_misses_total", cache.misses)
        registry.sample(
            "repro_plan_cache_evictions_total", cache.evictions
        )
        registry.sample(
            "repro_plan_cache_invalidations_total", cache.invalidations
        )
        registry.sample(
            "repro_plan_cache_seconds_saved_total", cache.seconds_saved
        )
        for entry in self.cache.entries():
            kind, key = entry.key[0], entry.key[1]
            label = f"{kind}:{key}"[:120]
            registry.sample(
                "repro_plan_cache_entry_hits",
                entry.hits,
                statement=label,
            )
            registry.sample(
                "repro_plan_cache_entry_seconds_saved",
                entry.seconds_saved,
                statement=label,
            )

    def stats(self) -> ServiceStats:
        parallel_config = getattr(self.database, "parallel_config", None)
        # Report the *effective* placement: ``placement="auto"`` (or a
        # forced per-batch policy) overrides the legacy executor knob,
        # and stats that echo only the configured executor would lie
        # about the substrate mixed-placement queries actually run on.
        if parallel_config is not None:
            effective = getattr(
                parallel_config, "effective_placement", None
            )
            executor = (
                effective()
                if callable(effective)
                else getattr(parallel_config, "executor", "thread")
            )
        else:
            executor = "thread"
        with self._state_lock:
            return ServiceStats(
                queries=self._queries,
                text_hits=self._text_hits,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                pending=self._pending,
                cache=self.cache.stats(),
                executor=executor,
                watchdog_abandonments=self._watchdog,
            )

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work, drain the pool, release the cache.

        ``_closed`` flips first so *new* submissions and one-shot
        executions are rejected immediately, but sessions already
        admitted to the pool drain to completion (their worker threads
        carry an ``admitted`` mark past the closed check) — a graceful
        shutdown finishes the work it accepted.
        """
        if self._closed:
            return
        self._closed = True
        self.obs.registry.unregister_collector(self._collect_metrics)
        self.database.catalog.remove_listener(self._listener)
        with self._state_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.cache.invalidate()
        with self._state_lock:
            self._text_index.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
