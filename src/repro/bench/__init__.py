"""Benchmark harness: workloads, systems, and experiment drivers."""

from repro.bench.experiments import (
    SCALES,
    Scale,
    fig5,
    fig6,
    fig7a,
    fig7b,
    fig7c,
    fig7d,
    fig8,
    get_scale,
    make_tpch_database,
    run_all,
    table2,
    table3,
)
from repro.bench.reporting import ExperimentResult, render_table, speedup
from repro.bench.synth import (
    make_group_table,
    make_join_pair,
    make_team_tables,
    synth_schema,
)
from repro.bench.systems import FIGURE8_SYSTEMS, SystemConfig

__all__ = [
    "ExperimentResult",
    "FIGURE8_SYSTEMS",
    "SCALES",
    "Scale",
    "SystemConfig",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig8",
    "get_scale",
    "make_group_table",
    "make_join_pair",
    "make_team_tables",
    "make_tpch_database",
    "render_table",
    "run_all",
    "speedup",
    "synth_schema",
    "table2",
    "table3",
]
