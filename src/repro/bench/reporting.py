"""Result structures and text rendering for the experiment harness.

Every experiment driver returns an :class:`ExperimentResult` — headers
plus rows — which renders as an aligned text table resembling the
paper's figures/tables and feeds EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table/figure: a labelled grid of measurements."""

    name: str
    headers: list[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        return render_table(self.name, self.headers, self.rows, self.notes)

    def column(self, header: str) -> list[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by(self, header: str, value: Any) -> Sequence[Any]:
        index = self.headers.index(header)
        for row in self.rows:
            if row[index] == value:
                return row
        raise KeyError(value)


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned fixed-width text table."""
    formatted = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    out = [f"== {name} ==", line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in formatted)
    for note in notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def speedup(baseline: float, value: float) -> float:
    """Baseline-over-value ratio (>1 means faster than baseline)."""
    if value <= 0:
        return float("inf")
    return baseline / value
