"""TPC-H Queries 1, 3 and 10 — the paper's Figure 8 workload.

Written in the supported SQL subset: date arithmetic is spelled with
``DATE``/``INTERVAL`` literals (folded at parse time), and ORDER BY keys
appear in the select lists, as the official queries already have them.
"""

from __future__ import annotations

Q1 = """
SELECT
    l_returnflag,
    l_linestatus,
    sum(l_quantity) AS sum_qty,
    sum(l_extendedprice) AS sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    avg(l_quantity) AS avg_qty,
    avg(l_extendedprice) AS avg_price,
    avg(l_discount) AS avg_disc,
    count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q3 = """
SELECT
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) AS revenue,
    o_orderdate,
    o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

Q10 = """
SELECT
    c_custkey,
    c_name,
    sum(l_extendedprice * (1 - l_discount)) AS revenue,
    c_acctbal,
    n_name,
    c_address,
    c_phone,
    c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
         c_comment
ORDER BY revenue DESC
LIMIT 20
"""

QUERIES = {"Q1": Q1, "Q3": Q3, "Q10": Q10}
