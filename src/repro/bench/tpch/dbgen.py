"""A deterministic, in-repo TPC-H data generator.

Substitutes for the official ``dbgen`` (DESIGN.md §2): same table
population ratios and value domains as the specification —

* per scale factor SF: 150 000·SF customers, 1 500 000·SF orders,
  ~6 000 000·SF lineitems (1–7 per order), 10 000·SF suppliers,
  200 000·SF parts, 25 nations, 5 regions;
* ``l_shipdate`` within [1992-01-01, 1998-08-03), discounts 0.00–0.10,
  tax 0.00–0.08, quantities 1–50, return flags R/A/N correlated with
  receipt date, market segments from the official five;

so predicate selectivities (Q1's ``l_shipdate <= 1998-09-02 - 90 days``
keeps ~97 % of lineitem; Q3's segment filter keeps ~20 % of customers)
match the paper's workload behaviour at any scale.
"""

from __future__ import annotations

import random

from repro.bench.tpch.schema import ALL_SCHEMAS
from repro.storage.catalog import Catalog
from repro.storage.types import date_to_ordinal

#: Official population ratios per unit scale factor.
CUSTOMERS_PER_SF = 150_000
ORDERS_PER_SF = 1_500_000
SUPPLIERS_PER_SF = 10_000
PARTS_PER_SF = 200_000

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTIONS = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
)
NATION_NAMES = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)
REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
#: Region of each nation, per the specification's nation.tbl.
NATION_REGION = (
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3,
    3, 1,
)

_START_DATE = date_to_ordinal("1992-01-01")
_END_ORDER_DATE = date_to_ordinal("1998-08-02")


def generate_tpch(
    catalog: Catalog, scale_factor: float = 0.01, seed: int = 19920101
) -> None:
    """Populate a catalogue with all eight TPC-H tables at ``scale_factor``.

    Statistics are gathered afterwards ("we built indexes in all
    systems, gathered statistics at the highest level of detail").
    """
    rng = random.Random(seed)
    for name, schema_factory in ALL_SCHEMAS.items():
        catalog.create_table(name, schema_factory())

    _load_region(catalog, rng)
    _load_nation(catalog, rng)
    num_customers = max(int(CUSTOMERS_PER_SF * scale_factor), 30)
    num_orders = max(int(ORDERS_PER_SF * scale_factor), 300)
    num_suppliers = max(int(SUPPLIERS_PER_SF * scale_factor), 5)
    num_parts = max(int(PARTS_PER_SF * scale_factor), 40)
    _load_supplier(catalog, rng, num_suppliers)
    _load_customer(catalog, rng, num_customers)
    _load_part(catalog, rng, num_parts)
    _load_partsupp(catalog, rng, num_parts, num_suppliers)
    _load_orders_and_lineitem(
        catalog, rng, num_orders, num_customers, num_parts, num_suppliers
    )
    catalog.analyze()


def _comment(rng: random.Random, limit: int) -> str:
    words = ("fox", "ideas", "deposits", "packages", "theodolites",
             "requests", "accounts", "pending", "silent", "final")
    out = []
    budget = rng.randrange(5, limit)
    while sum(len(w) + 1 for w in out) < budget - 12:
        out.append(rng.choice(words))
    return " ".join(out)[: limit - 1]


def _phone(rng: random.Random, nation_key: int) -> str:
    return (
        f"{10 + nation_key}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )


def _load_region(catalog: Catalog, rng: random.Random) -> None:
    catalog.table("region").load_rows(
        (key, name, _comment(rng, 80))
        for key, name in enumerate(REGION_NAMES)
    )


def _load_nation(catalog: Catalog, rng: random.Random) -> None:
    catalog.table("nation").load_rows(
        (key, name, NATION_REGION[key], _comment(rng, 80))
        for key, name in enumerate(NATION_NAMES)
    )


def _load_supplier(catalog: Catalog, rng: random.Random, count: int) -> None:
    rows = []
    for key in range(1, count + 1):
        nation = rng.randrange(25)
        rows.append((
            key,
            f"Supplier#{key:09d}",
            f"addr {rng.randrange(10**6)}",
            nation,
            _phone(rng, nation),
            round(rng.uniform(-999.99, 9999.99), 2),
            _comment(rng, 60),
        ))
    catalog.table("supplier").load_rows(rows)


def _load_customer(catalog: Catalog, rng: random.Random, count: int) -> None:
    rows = []
    for key in range(1, count + 1):
        nation = rng.randrange(25)
        rows.append((
            key,
            f"Customer#{key:09d}",
            f"addr {rng.randrange(10**6)}",
            nation,
            _phone(rng, nation),
            round(rng.uniform(-999.99, 9999.99), 2),
            SEGMENTS[rng.randrange(len(SEGMENTS))],
            _comment(rng, 60),
        ))
    catalog.table("customer").load_rows(rows)


def _load_part(catalog: Catalog, rng: random.Random, count: int) -> None:
    types = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    materials = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
    containers = ("SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG")
    rows = []
    for key in range(1, count + 1):
        rows.append((
            key,
            f"part {key} {rng.choice(materials).lower()}",
            f"Manufacturer#{rng.randrange(1, 6)}",
            f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
            f"{rng.choice(types)} {rng.choice(materials)}",
            rng.randrange(1, 51),
            rng.choice(containers),
            round(900 + (key % 1000) + key / 10_000.0, 2),
            _comment(rng, 23),
        ))
    catalog.table("part").load_rows(rows)


def _load_partsupp(
    catalog: Catalog, rng: random.Random, parts: int, suppliers: int
) -> None:
    rows = []
    for part_key in range(1, parts + 1):
        for i in range(4):
            supp_key = (part_key + i * (suppliers // 4 + 1)) % suppliers + 1
            rows.append((
                part_key,
                supp_key,
                rng.randrange(1, 10_000),
                round(rng.uniform(1.0, 1000.0), 2),
                _comment(rng, 60),
            ))
    catalog.table("partsupp").load_rows(rows)


def _load_orders_and_lineitem(
    catalog: Catalog,
    rng: random.Random,
    num_orders: int,
    num_customers: int,
    num_parts: int,
    num_suppliers: int,
) -> None:
    order_rows = []
    line_rows = []
    flags = ("R", "A")
    for order_key in range(1, num_orders + 1):
        cust_key = rng.randrange(1, num_customers + 1)
        order_date = rng.randrange(_START_DATE, _END_ORDER_DATE)
        num_lines = rng.randrange(1, 8)
        total = 0.0
        for line_number in range(1, num_lines + 1):
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            ship_date = order_date + rng.randrange(1, 122)
            commit_date = order_date + rng.randrange(30, 91)
            receipt_date = ship_date + rng.randrange(1, 31)
            current = date_to_ordinal("1995-06-17")
            if receipt_date <= current:
                return_flag = flags[rng.randrange(2)]
            else:
                return_flag = "N"
            line_status = "F" if ship_date <= current else "O"
            total += extended
            line_rows.append((
                order_key,
                rng.randrange(1, num_parts + 1),
                rng.randrange(1, num_suppliers + 1),
                line_number,
                quantity,
                extended,
                discount,
                tax,
                return_flag,
                line_status,
                ship_date,
                commit_date,
                receipt_date,
                rng.choice(SHIP_INSTRUCTIONS),
                rng.choice(SHIP_MODES),
                _comment(rng, 27),
            ))
        order_rows.append((
            order_key,
            cust_key,
            "F" if order_date + 122 <= date_to_ordinal("1995-06-17") else "O",
            round(total, 2),
            order_date,
            rng.choice(PRIORITIES),
            f"Clerk#{rng.randrange(1, 1001):09d}",
            0,
            _comment(rng, 40),
        ))
    catalog.table("orders").load_rows(order_rows)
    catalog.table("lineitem").load_rows(line_rows)
