"""TPC-H substrate: schemas, deterministic dbgen, and Q1/Q3/Q10."""

from repro.bench.tpch.dbgen import generate_tpch
from repro.bench.tpch.queries import Q1, Q3, Q10, QUERIES
from repro.bench.tpch.schema import ALL_SCHEMAS

__all__ = ["ALL_SCHEMAS", "Q1", "Q10", "Q3", "QUERIES", "generate_tpch"]
