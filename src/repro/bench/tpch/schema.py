"""TPC-H schemas (all eight tables, official column sets).

Types follow the engine's type system: DECIMAL → DOUBLE, DATE → day
ordinal, fixed/variable text → CHAR/VARCHAR fixed slots.  Comment
columns are kept (they are part of what makes TPC-H tuples wide — the
property that favours the DSM engine in Figure 8) but generated short.
"""

from __future__ import annotations

from repro.storage.schema import Column, Schema
from repro.storage.types import DATE, DOUBLE, INT, char, varchar


def region_schema() -> Schema:
    return Schema([
        Column("r_regionkey", INT),
        Column("r_name", char(25)),
        Column("r_comment", varchar(80)),
    ])


def nation_schema() -> Schema:
    return Schema([
        Column("n_nationkey", INT),
        Column("n_name", char(25)),
        Column("n_regionkey", INT),
        Column("n_comment", varchar(80)),
    ])


def supplier_schema() -> Schema:
    return Schema([
        Column("s_suppkey", INT),
        Column("s_name", char(25)),
        Column("s_address", varchar(40)),
        Column("s_nationkey", INT),
        Column("s_phone", char(15)),
        Column("s_acctbal", DOUBLE),
        Column("s_comment", varchar(60)),
    ])


def customer_schema() -> Schema:
    return Schema([
        Column("c_custkey", INT),
        Column("c_name", varchar(25)),
        Column("c_address", varchar(40)),
        Column("c_nationkey", INT),
        Column("c_phone", char(15)),
        Column("c_acctbal", DOUBLE),
        Column("c_mktsegment", char(10)),
        Column("c_comment", varchar(60)),
    ])


def part_schema() -> Schema:
    return Schema([
        Column("p_partkey", INT),
        Column("p_name", varchar(55)),
        Column("p_mfgr", char(25)),
        Column("p_brand", char(10)),
        Column("p_type", varchar(25)),
        Column("p_size", INT),
        Column("p_container", char(10)),
        Column("p_retailprice", DOUBLE),
        Column("p_comment", varchar(23)),
    ])


def partsupp_schema() -> Schema:
    return Schema([
        Column("ps_partkey", INT),
        Column("ps_suppkey", INT),
        Column("ps_availqty", INT),
        Column("ps_supplycost", DOUBLE),
        Column("ps_comment", varchar(60)),
    ])


def orders_schema() -> Schema:
    return Schema([
        Column("o_orderkey", INT),
        Column("o_custkey", INT),
        Column("o_orderstatus", char(1)),
        Column("o_totalprice", DOUBLE),
        Column("o_orderdate", DATE),
        Column("o_orderpriority", char(15)),
        Column("o_clerk", char(15)),
        Column("o_shippriority", INT),
        Column("o_comment", varchar(40)),
    ])


def lineitem_schema() -> Schema:
    return Schema([
        Column("l_orderkey", INT),
        Column("l_partkey", INT),
        Column("l_suppkey", INT),
        Column("l_linenumber", INT),
        Column("l_quantity", DOUBLE),
        Column("l_extendedprice", DOUBLE),
        Column("l_discount", DOUBLE),
        Column("l_tax", DOUBLE),
        Column("l_returnflag", char(1)),
        Column("l_linestatus", char(1)),
        Column("l_shipdate", DATE),
        Column("l_commitdate", DATE),
        Column("l_receiptdate", DATE),
        Column("l_shipinstruct", char(25)),
        Column("l_shipmode", char(10)),
        Column("l_comment", varchar(27)),
    ])


ALL_SCHEMAS = {
    "region": region_schema,
    "nation": nation_schema,
    "supplier": supplier_schema,
    "customer": customer_schema,
    "part": part_schema,
    "partsupp": partsupp_schema,
    "orders": orders_schema,
    "lineitem": lineitem_schema,
}
