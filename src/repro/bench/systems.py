"""System configurations for the Figure 8 comparison.

Maps the paper's four systems onto this repository's engines
(substitutions documented in DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Database


@dataclass(frozen=True)
class SystemConfig:
    """One comparison system: display name + engine kind."""

    label: str
    engine_kind: str
    description: str


#: The Figure 8 line-up, in the paper's presentation order.
FIGURE8_SYSTEMS = (
    SystemConfig(
        "PostgreSQL*",
        "volcano-generic",
        "generic interpreted iterators over NSM",
    ),
    SystemConfig(
        "System X*",
        "systemx",
        "optimized iterators + buffering over NSM",
    ),
    SystemConfig(
        "MonetDB*",
        "vectorized",
        "column-at-a-time DSM engine with full materialisation",
    ),
    SystemConfig(
        "HIQUE",
        "hique",
        "holistic per-query code generation over NSM",
    ),
)


def engine_for(db: Database, system: SystemConfig):
    return db.engine(system.engine_kind)
