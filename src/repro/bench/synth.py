"""Synthetic workload generators for the Section VI-A/VI-B experiments.

The paper's microbenchmarks use tables of 72-byte tuples with integer
join/grouping attributes and controlled match counts.  A 72-byte tuple
here is one INT key plus eight INT payload fields (9 × 8 bytes), so the
on-page layout matches the paper's exactly.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import random

from repro.storage.catalog import Catalog
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import INT

#: Payload fields per tuple so that key + payload = 72 bytes.
PAYLOAD_FIELDS = 8


def synth_schema(key_name: str = "k") -> Schema:
    """The 72-byte tuple schema: key + eight payload integers."""
    columns = [Column(key_name, INT)]
    columns.extend(
        Column(f"f{i}", INT) for i in range(1, PAYLOAD_FIELDS + 1)
    )
    return Schema(columns)


def make_join_pair(
    catalog: Catalog,
    outer_rows: int,
    inner_rows: int,
    matches_per_outer: int,
    outer_name: str = "outer_t",
    inner_name: str = "inner_t",
    seed: int = 42,
) -> tuple[Table, Table]:
    """Two tables joined on ``k`` with a controlled match count.

    Every key value appears ``matches_per_outer`` times in the inner
    table, and outer keys are drawn uniformly from the same domain, so
    each outer tuple matches exactly ``matches_per_outer`` inner tuples
    — the knob Figures 5 and 7(c) turn.
    """
    if matches_per_outer <= 0 or inner_rows % matches_per_outer:
        raise ValueError(
            "inner_rows must be a positive multiple of matches_per_outer"
        )
    rng = random.Random(seed)
    distinct = inner_rows // matches_per_outer
    schema = synth_schema()

    outer = catalog.create_table(outer_name, schema)
    outer.load_rows(
        _payload_rows(rng, (rng.randrange(distinct) for _ in range(outer_rows)))
    )

    inner = catalog.create_table(inner_name, schema)
    inner_keys = [key for key in range(distinct) for _ in range(matches_per_outer)]
    rng.shuffle(inner_keys)
    inner.load_rows(_payload_rows(rng, iter(inner_keys)))

    catalog.analyze(outer_name)
    catalog.analyze(inner_name)
    return outer, inner


def make_group_table(
    catalog: Catalog,
    rows: int,
    distinct_groups: int,
    name: str = "events",
    seed: int = 42,
) -> Table:
    """One table whose ``k`` attribute has a controlled distinct count —
    the grouping-cardinality knob of Figures 6 and 7(d)."""
    if distinct_groups <= 0:
        raise ValueError("distinct_groups must be positive")
    rng = random.Random(seed)
    schema = synth_schema()
    table = catalog.create_table(name, schema)
    table.load_rows(
        _payload_rows(
            rng, (rng.randrange(distinct_groups) for _ in range(rows))
        )
    )
    catalog.analyze(name)
    return table


def make_team_tables(
    catalog: Catalog,
    big_rows: int,
    small_rows: int,
    num_small: int,
    big_name: str = "fact",
    seed: int = 42,
) -> list[Table]:
    """A star-ish join team: one big table plus ``num_small`` tables all
    sharing the key domain (Figure 7(b)).

    Keys 0..small_rows-1 appear once in each small table and
    ``big_rows // small_rows`` times in the big table, so the output
    cardinality equals ``big_rows`` regardless of how many tables join.
    """
    if big_rows % small_rows:
        raise ValueError("big_rows must be a multiple of small_rows")
    rng = random.Random(seed)
    schema = synth_schema()
    tables: list[Table] = []

    big = catalog.create_table(big_name, schema)
    big_keys = [key for key in range(small_rows) for _ in range(big_rows // small_rows)]
    rng.shuffle(big_keys)
    big.load_rows(_payload_rows(rng, iter(big_keys)))
    catalog.analyze(big_name)
    tables.append(big)

    for index in range(num_small):
        name = f"dim{index}"
        small = catalog.create_table(name, schema)
        keys = list(range(small_rows))
        rng.shuffle(keys)
        small.load_rows(_payload_rows(rng, iter(keys)))
        catalog.analyze(name)
        tables.append(small)
    return tables


def _payload_rows(rng: random.Random, keys) -> list[tuple]:
    """Rows of (key, f1..f8) with pseudo-random payload values."""
    rows = []
    for key in keys:
        payload = tuple(
            rng.randrange(1_000_000) for _ in range(PAYLOAD_FIELDS)
        )
        rows.append((key, *payload))
    return rows
