"""Experiment drivers: one function per reproduced table/figure.

Each driver builds its workload, runs every configuration the paper
compares, and returns :class:`~repro.bench.reporting.ExperimentResult`
objects whose ``render()`` prints a paper-style table.  Scales are
reduced from the paper's (Python cannot scan millions of rows per
benchmark iteration); EXPERIMENTS.md records the scale used and the
paper-vs-measured shape for every experiment.

Drivers:

* :func:`fig5`  — join profiling (time breakdown + hardware metrics)
* :func:`fig6`  — aggregation profiling (same)
* :func:`table2` — effect of "compiler" optimization (O0 vs O2)
* :func:`fig7a` — join scalability
* :func:`fig7b` — multi-way joins / join teams
* :func:`fig7c` — join predicate selectivity
* :func:`fig7d` — grouping attribute cardinality
* :func:`fig8`  — TPC-H Q1/Q3/Q10 across the four systems
* :func:`table3` — query preparation cost
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.bench.synth import make_group_table, make_join_pair, make_team_tables
from repro.bench.systems import FIGURE8_SYSTEMS
from repro.bench.tpch import QUERIES, generate_tpch
from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.parallel.stats import ParallelConfig
from repro.engines.hardcoded import (
    hybrid_agg_hardcoded,
    hybrid_join_hardcoded,
    map_agg_hardcoded,
    merge_join_hardcoded,
)
from repro.engines.volcano import VolcanoEngine
from repro.memsim.probe import Probe, ProfileReport, snapshot
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


def _serial_hique(catalog) -> HiqueEngine:
    """A HIQUE engine pinned to serial execution.

    The figure/table drivers reproduce the paper's single-threaded
    measurements; pinning ``enabled=False`` keeps them deterministic
    even when REPRO_DEFAULT_PARALLEL / REPRO_EXECUTOR flip the rest of
    the suite onto a parallel backend.
    """
    return HiqueEngine(catalog, parallel=ParallelConfig(enabled=False))


# -- scales ------------------------------------------------------------------------


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one run of the experiment suite."""

    name: str
    join1_rows: int  # Join Query #1 table cardinality (paper: 10 000)
    join1_matches: int  # matches per outer tuple (paper: 1 000)
    join2_rows: int  # Join Query #2 cardinality (paper: 1 000 000)
    join2_matches: int  # paper: 10
    agg_rows: int  # aggregation input (paper: 1 000 000)
    agg1_groups: int  # paper: 100 000
    agg2_groups: int  # paper: 10
    scan_rows: int  # fig7 base cardinality (paper: 1 000 000)
    tpch_sf: float  # paper: 1.0
    selectivity_levels: tuple[int, ...]  # fig7c matches (paper: 1..1000)
    group_levels: tuple[int, ...]  # fig7d group counts (paper: 10..100k)
    team_sizes: tuple[int, ...]  # fig7b table counts (paper: 2..8)
    inner_multipliers: tuple[int, ...]  # fig7a inner growth (paper: 1..10)


SCALES = {
    "tiny": Scale(
        name="tiny",
        join1_rows=240, join1_matches=24,
        join2_rows=1_600, join2_matches=8,
        agg_rows=2_000, agg1_groups=200, agg2_groups=8,
        scan_rows=2_000, tpch_sf=0.001,
        selectivity_levels=(1, 10),
        group_levels=(10, 100),
        team_sizes=(2, 3),
        inner_multipliers=(1, 2),
    ),
    "small": Scale(
        name="small",
        join1_rows=2_000, join1_matches=200,
        join2_rows=24_000, join2_matches=10,
        agg_rows=30_000, agg1_groups=3_000, agg2_groups=10,
        scan_rows=20_000, tpch_sf=0.01,
        selectivity_levels=(1, 10, 100),
        group_levels=(10, 100, 1_000, 10_000),
        team_sizes=(2, 4, 6, 8),
        inner_multipliers=(1, 2, 4, 8, 10),
    ),
    "medium": Scale(
        name="medium",
        join1_rows=5_000, join1_matches=500,
        join2_rows=60_000, join2_matches=10,
        agg_rows=100_000, agg1_groups=10_000, agg2_groups=10,
        scan_rows=60_000, tpch_sf=0.02,
        selectivity_levels=(1, 10, 100, 1_000),
        group_levels=(10, 100, 1_000, 10_000, 100_000),
        team_sizes=(2, 3, 4, 5, 6, 7, 8),
        inner_multipliers=(1, 2, 4, 6, 8, 10),
    ),
}


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def _timed(fn: Callable[[], object]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


#: The five code versions of Section VI-A, in the paper's order.
VERSION_LABELS = (
    "Generic iterators",
    "Optimized iterators",
    "Generic hard-coded",
    "Optimized hard-coded",
    "HIQUE",
)


@dataclass
class _Version:
    """One code version: an untraced timed runner + a traced runner."""

    label: str
    timed: Callable[[], object]
    traced: Callable[[Probe], object]


def _profile_versions(
    versions: list[_Version],
) -> tuple[list[float], list[ProfileReport]]:
    """Wall-time and simulated-hardware measurements per version."""
    seconds: list[float] = []
    reports: list[ProfileReport] = []
    for version in versions:
        seconds.append(_timed(version.timed))
        probe = Probe()
        version.traced(probe)
        reports.append(snapshot(version.label, probe))
    return seconds, reports


def _breakdown_result(
    name: str, versions: list[str], seconds: list[float],
    reports: list[ProfileReport],
) -> ExperimentResult:
    result = ExperimentResult(
        name,
        [
            "Version", "Instr (model s)", "Resource stalls (s)",
            "L2 miss stalls (s)", "L1 miss stalls (s)",
            "Model total (s)", "Wall time (s)",
        ],
    )
    giga = 1.86e9
    for label, wall, report in zip(versions, seconds, reports):
        result.add(
            label,
            report.instruction_cycles / giga,
            report.resource_stall_cycles / giga,
            report.l2_stall_cycles / giga,
            report.d1_stall_cycles / giga,
            report.total_cycles / giga,
            wall,
        )
    return result


def _metrics_result(
    name: str, reports: list[ProfileReport]
) -> ExperimentResult:
    """Normalised hardware metrics (Figures 5(c,d)/6(c,d) layout)."""
    result = ExperimentResult(
        name,
        [
            "Version", "CPI", "Retired instr (%)", "Function calls (%)",
            "D1 accesses (%)", "D1 prefetch eff (%)",
            "L2 prefetch eff (%)",
        ],
    )
    base = reports[0]
    for report in reports:
        result.add(
            report.label,
            round(report.cpi, 3),
            _pct(report.retired_instructions, base.retired_instructions),
            _pct(report.function_calls, base.function_calls),
            _pct(report.d1_accesses, base.d1_accesses),
            round(report.d1_prefetch_efficiency * 100, 2),
            round(report.l2_prefetch_efficiency * 100, 2),
        )
    return result


def _pct(value: float, base: float) -> float:
    if base <= 0:
        return 0.0
    return round(100.0 * value / base, 2)


# -- Figure 5: join profiling --------------------------------------------------------


def _join_query_versions(
    catalog: Catalog,
    sql: str,
    config: PlannerConfig,
    left_table,
    right_table,
    hardcoded: Callable,
    hardcoded_kwargs: dict,
) -> list[_Version]:
    versions: list[_Version] = []
    for label, generic in (
        ("Generic iterators", True),
        ("Optimized iterators", False),
    ):
        engine = VolcanoEngine(catalog, generic=generic)
        plan = engine.plan(sql, planner_config=config)
        versions.append(
            _Version(
                label,
                timed=lambda e=engine, p=plan: e.execute_plan(p),
                traced=lambda probe, e=engine, p=plan: e.execute_plan(
                    p, probe=probe
                ),
            )
        )
    for label, style in (
        ("Generic hard-coded", "generic"),
        ("Optimized hard-coded", "optimized"),
    ):
        versions.append(
            _Version(
                label,
                timed=lambda s=style: hardcoded(
                    left_table, right_table, style=s, collect=True,
                    **hardcoded_kwargs,
                ),
                traced=lambda probe, s=style: hardcoded(
                    left_table, right_table, style=s, probe=probe,
                    collect=True, **hardcoded_kwargs,
                ),
            )
        )
    hique = _serial_hique(catalog)
    prepared = hique.prepare(sql, planner_config=config, use_cache=False)
    prepared_traced = hique.prepare(
        sql, traced=True, planner_config=config, use_cache=False
    )
    versions.append(
        _Version(
            "HIQUE",
            timed=lambda: hique.execute_prepared(prepared),
            traced=lambda probe: hique.execute_prepared(
                prepared_traced, probe=probe
            ),
        )
    )
    return versions


#: SQL shape used by the join microbenchmarks: staged columns equal the
#: select list, so no separate projection pass runs in any engine.
_JOIN_SQL = (
    "SELECT o.k, o.f1, i.k, i.f2 FROM outer_t o, inner_t i "
    "WHERE o.k = i.k"
)


def fig5(scale: str | Scale = "small") -> list[ExperimentResult]:
    """Figure 5: join query profiling across the five code versions."""
    sizes = get_scale(scale)
    results: list[ExperimentResult] = []

    # Join Query #1: inflationary merge join (paper: 10k x 10k, x1000).
    catalog1 = Catalog()
    left1, right1 = make_join_pair(
        catalog1, sizes.join1_rows, sizes.join1_rows, sizes.join1_matches
    )
    config1 = PlannerConfig(force_join="merge")
    versions = _join_query_versions(
        catalog1, _JOIN_SQL, config1, left1, right1,
        merge_join_hardcoded,
        dict(left_key=0, right_key=0, left_fields=(0, 1),
             right_fields=(0, 2)),
    )
    seconds, reports = _profile_versions(versions)
    results.append(
        _breakdown_result(
            "Fig 5(a): execution time breakdown, Join Query #1 (merge)",
            list(VERSION_LABELS), seconds, reports,
        )
    )
    results.append(
        _metrics_result("Fig 5(c): hardware metrics, Join Query #1", reports)
    )

    # Join Query #2: larger tables, low selectivity, hybrid join.
    catalog2 = Catalog()
    left2, right2 = make_join_pair(
        catalog2, sizes.join2_rows, sizes.join2_rows, sizes.join2_matches
    )
    config2 = PlannerConfig(force_join="hybrid", force_partitions=64)
    versions = _join_query_versions(
        catalog2, _JOIN_SQL, config2, left2, right2,
        hybrid_join_hardcoded,
        dict(left_key=0, right_key=0, left_fields=(0, 1),
             right_fields=(0, 2), num_partitions=64),
    )
    seconds, reports = _profile_versions(versions)
    results.append(
        _breakdown_result(
            "Fig 5(b): execution time breakdown, Join Query #2 (hybrid)",
            list(VERSION_LABELS), seconds, reports,
        )
    )
    results.append(
        _metrics_result("Fig 5(d): hardware metrics, Join Query #2", reports)
    )
    return results


# -- Figure 6: aggregation profiling ------------------------------------------------------

_AGG_SQL = "SELECT k, sum(f1) AS s1, sum(f2) AS s2 FROM events GROUP BY k"


def _agg_query_versions(
    catalog: Catalog,
    config: PlannerConfig,
    table,
    hardcoded: Callable,
    hardcoded_kwargs: dict,
) -> list[_Version]:
    versions: list[_Version] = []
    for label, generic in (
        ("Generic iterators", True),
        ("Optimized iterators", False),
    ):
        engine = VolcanoEngine(catalog, generic=generic)
        plan = engine.plan(_AGG_SQL, planner_config=config)
        versions.append(
            _Version(
                label,
                timed=lambda e=engine, p=plan: e.execute_plan(p),
                traced=lambda probe, e=engine, p=plan: e.execute_plan(
                    p, probe=probe
                ),
            )
        )
    for label, style in (
        ("Generic hard-coded", "generic"),
        ("Optimized hard-coded", "optimized"),
    ):
        versions.append(
            _Version(
                label,
                timed=lambda s=style: hardcoded(
                    table, style=s, **hardcoded_kwargs
                ),
                traced=lambda probe, s=style: hardcoded(
                    table, style=s, probe=probe, **hardcoded_kwargs
                ),
            )
        )
    hique = _serial_hique(catalog)
    prepared = hique.prepare(_AGG_SQL, planner_config=config, use_cache=False)
    prepared_traced = hique.prepare(
        _AGG_SQL, traced=True, planner_config=config, use_cache=False
    )
    versions.append(
        _Version(
            "HIQUE",
            timed=lambda: hique.execute_prepared(prepared),
            traced=lambda probe: hique.execute_prepared(
                prepared_traced, probe=probe
            ),
        )
    )
    return versions


def fig6(scale: str | Scale = "small") -> list[ExperimentResult]:
    """Figure 6: aggregation profiling across the five code versions."""
    sizes = get_scale(scale)
    results: list[ExperimentResult] = []

    # Aggregation Query #1: many groups → hybrid hash-sort.
    catalog1 = Catalog()
    table1 = make_group_table(catalog1, sizes.agg_rows, sizes.agg1_groups)
    config1 = PlannerConfig(force_agg="hybrid", force_partitions=64)
    versions = _agg_query_versions(
        catalog1, config1, table1, hybrid_agg_hardcoded,
        dict(group_field=0, sum_fields=(1, 2), fields=(0, 1, 2),
             num_partitions=64),
    )
    seconds, reports = _profile_versions(versions)
    results.append(
        _breakdown_result(
            "Fig 6(a): execution time breakdown, Aggregation Query #1 "
            "(hybrid hash-sort)",
            list(VERSION_LABELS), seconds, reports,
        )
    )
    results.append(
        _metrics_result(
            "Fig 6(c): hardware metrics, Aggregation Query #1", reports
        )
    )

    # Aggregation Query #2: few groups → map aggregation.
    catalog2 = Catalog()
    table2_ = make_group_table(catalog2, sizes.agg_rows, sizes.agg2_groups)
    config2 = PlannerConfig(force_agg="map")
    versions = _agg_query_versions(
        catalog2, config2, table2_, map_agg_hardcoded,
        dict(group_field=0, sum_fields=(1, 2), fields=(0, 1, 2)),
    )
    seconds, reports = _profile_versions(versions)
    results.append(
        _breakdown_result(
            "Fig 6(b): execution time breakdown, Aggregation Query #2 (map)",
            list(VERSION_LABELS), seconds, reports,
        )
    )
    results.append(
        _metrics_result(
            "Fig 6(d): hardware metrics, Aggregation Query #2", reports
        )
    )
    return results


# -- Table II: effect of compiler optimization ----------------------------------------------


def table2(scale: str | Scale = "small") -> ExperimentResult:
    """Table II: response times at O0 vs O2 for all five versions.

    For the iterator and hard-coded versions, "compiling at -O0" is
    emulated by the deopt knob (an un-inlined call layer per tuple);
    HIQUE uses its real generation levels.
    """
    sizes = get_scale(scale)
    result = ExperimentResult(
        "Table II: effect of compiler optimization (seconds)",
        [
            "Version",
            "JQ1 -O0", "JQ1 -O2", "JQ2 -O0", "JQ2 -O2",
            "AQ1 -O0", "AQ1 -O2", "AQ2 -O0", "AQ2 -O2",
        ],
    )

    catalog_j1 = Catalog()
    j1 = make_join_pair(
        catalog_j1, sizes.join1_rows, sizes.join1_rows, sizes.join1_matches
    )
    catalog_j2 = Catalog()
    j2 = make_join_pair(
        catalog_j2, sizes.join2_rows, sizes.join2_rows, sizes.join2_matches
    )
    catalog_a1 = Catalog()
    a1 = make_group_table(catalog_a1, sizes.agg_rows, sizes.agg1_groups)
    catalog_a2 = Catalog()
    a2 = make_group_table(catalog_a2, sizes.agg_rows, sizes.agg2_groups)

    join_cfg1 = PlannerConfig(force_join="merge")
    join_cfg2 = PlannerConfig(force_join="hybrid", force_partitions=64)
    agg_cfg1 = PlannerConfig(force_agg="hybrid", force_partitions=64)
    agg_cfg2 = PlannerConfig(force_agg="map")

    workloads = [
        (catalog_j1, _JOIN_SQL, join_cfg1, "join1", j1),
        (catalog_j2, _JOIN_SQL, join_cfg2, "join2", j2),
        (catalog_a1, _AGG_SQL, agg_cfg1, "agg1", a1),
        (catalog_a2, _AGG_SQL, agg_cfg2, "agg2", a2),
    ]

    def volcano_times(generic: bool) -> list[float]:
        times = []
        for catalog, sql, config, _kind, _tables in workloads:
            for deopt in (True, False):
                engine = VolcanoEngine(catalog, generic=generic, deopt=deopt)
                plan = engine.plan(sql, planner_config=config)
                times.append(_timed(lambda: engine.execute_plan(plan)))
        return times

    def hardcoded_times(style: str) -> list[float]:
        times = []
        for _catalog, _sql, _config, kind, tables in workloads:
            for deopt in (True, False):
                times.append(
                    _timed(
                        lambda: _run_hardcoded(kind, tables, style, deopt)
                    )
                )
        return times

    def hique_times() -> list[float]:
        times = []
        for catalog, sql, config, _kind, _tables in workloads:
            engine = _serial_hique(catalog)
            for level in (OPT_O0, OPT_O2):
                prepared = engine.prepare(
                    sql, opt_level=level, planner_config=config,
                    use_cache=False,
                )
                times.append(
                    _timed(lambda: engine.execute_prepared(prepared))
                )
        return times

    result.add("Generic iterators", *volcano_times(generic=True))
    result.add("Optimized iterators", *volcano_times(generic=False))
    result.add("Generic hard-coded", *hardcoded_times("generic"))
    result.add("Optimized hard-coded", *hardcoded_times("optimized"))
    result.add("HIQUE", *hique_times())
    result.note(
        "-O0 emulated for non-generated versions via un-inlined call "
        "layers (deopt); HIQUE uses its actual generation levels."
    )
    return result


def _run_hardcoded(kind: str, tables, style: str, deopt: bool):
    if kind == "join1":
        left, right = tables
        return merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style=style, collect=True,
            deopt=deopt,
        )
    if kind == "join2":
        left, right = tables
        return hybrid_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), num_partitions=64,
            style=style, collect=True, deopt=deopt,
        )
    if kind == "agg1":
        return hybrid_agg_hardcoded(
            tables, 0, (1, 2), (0, 1, 2), num_partitions=64, style=style,
            deopt=deopt,
        )
    return map_agg_hardcoded(
        tables, 0, (1, 2), (0, 1, 2), style=style, deopt=deopt
    )


# -- Figure 7(a): join scalability ------------------------------------------------------------


def fig7a(scale: str | Scale = "small") -> ExperimentResult:
    """Figure 7(a): join time vs inner-table cardinality."""
    sizes = get_scale(scale)
    result = ExperimentResult(
        "Fig 7(a): join scalability (seconds)",
        [
            "Inner rows",
            "Merge-Iterators", "Hybrid-Iterators",
            "Merge-HIQUE", "Hybrid-HIQUE",
        ],
    )
    outer_rows = sizes.scan_rows
    for multiplier in sizes.inner_multipliers:
        inner_rows = outer_rows * multiplier
        catalog = Catalog()
        make_join_pair(catalog, outer_rows, inner_rows, 10)
        row: list[object] = [inner_rows]
        for engine_kind in ("iterators", "hique"):
            for algorithm in ("merge", "hybrid"):
                config = PlannerConfig(force_join=algorithm)
                if engine_kind == "iterators":
                    engine = VolcanoEngine(catalog)
                    plan = engine.plan(_JOIN_SQL, planner_config=config)
                    row_time = _timed(lambda: engine.execute_plan(plan))
                else:
                    engine = _serial_hique(catalog)
                    prepared = engine.prepare(
                        _JOIN_SQL, planner_config=config, use_cache=False
                    )
                    row_time = _timed(
                        lambda: engine.execute_prepared(prepared)
                    )
                row.append(row_time)
        # Reorder: merge-it, hybrid-it, merge-hq, hybrid-hq already OK.
        result.add(*row)
    return result


# -- Figure 7(b): multi-way joins / join teams --------------------------------------------------


def fig7b(scale: str | Scale = "small") -> ExperimentResult:
    """Figure 7(b): multi-way join time vs number of joined tables."""
    sizes = get_scale(scale)
    result = ExperimentResult(
        "Fig 7(b): multi-way joins (seconds)",
        [
            "Tables",
            "Merge-Iterators", "Merge-HIQUE (binary)",
            "Merge-HIQUE (team)", "Hybrid-HIQUE (team)",
        ],
    )
    for num_tables in sizes.team_sizes:
        catalog = Catalog()
        tables = make_team_tables(
            catalog,
            big_rows=sizes.scan_rows,
            small_rows=max(sizes.scan_rows // 10, 10),
            num_small=num_tables - 1,
        )
        dims = [t.name for t in tables[1:]]
        select = ", ".join(["fact.f1"] + [f"{d}.f1" for d in dims])
        where = " AND ".join(f"fact.k = {d}.k" for d in dims)
        sql = f"SELECT {select} FROM fact, {', '.join(dims)} WHERE {where}"

        measurements = []
        # Binary merge joins through iterators.
        config = PlannerConfig(enable_join_teams=False, force_join="merge")
        engine = VolcanoEngine(catalog)
        plan = engine.plan(sql, planner_config=config)
        measurements.append(_timed(lambda: engine.execute_plan(plan)))
        # HIQUE binary merge joins (teams disabled).
        hique = _serial_hique(catalog)
        prepared = hique.prepare(
            sql, planner_config=config, use_cache=False
        )
        measurements.append(_timed(lambda: hique.execute_prepared(prepared)))
        # HIQUE join teams: merge and hybrid flavours.
        for algorithm in ("merge", "hybrid"):
            config = PlannerConfig(
                enable_join_teams=True, force_join=algorithm,
                force_partitions=64,
            )
            prepared = hique.prepare(
                sql, planner_config=config, use_cache=False
            )
            measurements.append(
                _timed(lambda: hique.execute_prepared(prepared))
            )
        result.add(num_tables, *measurements)
    return result


# -- Figure 7(c): join predicate selectivity -------------------------------------------------------


def fig7c(scale: str | Scale = "small") -> ExperimentResult:
    """Figure 7(c): join time vs matches per outer tuple."""
    sizes = get_scale(scale)
    result = ExperimentResult(
        "Fig 7(c): join predicate selectivity (seconds)",
        [
            "Matches/outer",
            "Merge-Iterators", "Hybrid-Iterators",
            "Merge-HIQUE", "Hybrid-HIQUE",
        ],
    )
    rows = sizes.scan_rows // 4  # output grows as rows × matches
    for matches in sizes.selectivity_levels:
        catalog = Catalog()
        make_join_pair(catalog, rows, rows, matches)
        measurements: list[object] = [matches]
        for engine_kind in ("iterators", "hique"):
            for algorithm in ("merge", "hybrid"):
                config = PlannerConfig(force_join=algorithm)
                if engine_kind == "iterators":
                    engine = VolcanoEngine(catalog)
                    plan = engine.plan(_JOIN_SQL, planner_config=config)
                    measurements.append(
                        _timed(lambda: engine.execute_plan(plan))
                    )
                else:
                    hique = _serial_hique(catalog)
                    prepared = hique.prepare(
                        _JOIN_SQL, planner_config=config, use_cache=False
                    )
                    measurements.append(
                        _timed(lambda: hique.execute_prepared(prepared))
                    )
        result.add(*measurements)
    return result


# -- Figure 7(d): grouping attribute cardinality --------------------------------------------------------


def fig7d(scale: str | Scale = "small") -> ExperimentResult:
    """Figure 7(d): aggregation time vs number of groups."""
    sizes = get_scale(scale)
    result = ExperimentResult(
        "Fig 7(d): grouping cardinality (seconds)",
        [
            "Groups",
            "Sort-Iterators", "Hybrid-Iterators", "Map-Iterators",
            "Sort-HIQUE", "Hybrid-HIQUE", "Map-HIQUE",
        ],
    )
    for groups in sizes.group_levels:
        catalog = Catalog()
        make_group_table(catalog, sizes.agg_rows, groups)
        measurements: list[object] = [groups]
        for engine_kind in ("iterators", "hique"):
            for algorithm in ("sort", "hybrid", "map"):
                config = PlannerConfig(
                    force_agg=algorithm, force_partitions=64
                )
                if engine_kind == "iterators":
                    engine = VolcanoEngine(catalog)
                    plan = engine.plan(_AGG_SQL, planner_config=config)
                    measurements.append(
                        _timed(lambda: engine.execute_plan(plan))
                    )
                else:
                    hique = _serial_hique(catalog)
                    prepared = hique.prepare(
                        _AGG_SQL, planner_config=config, use_cache=False
                    )
                    measurements.append(
                        _timed(lambda: hique.execute_prepared(prepared))
                    )
        result.add(*measurements)
    return result


# -- Figure 8: TPC-H ------------------------------------------------------------------------------------


def fig8(
    scale: str | Scale = "small", db: Database | None = None
) -> ExperimentResult:
    """Figure 8: TPC-H Q1/Q3/Q10 across the four systems."""
    sizes = get_scale(scale)
    if db is None:
        db = make_tpch_database(sizes.tpch_sf)
    result = ExperimentResult(
        f"Fig 8: TPC-H @ SF {sizes.tpch_sf} (seconds)",
        ["System"] + list(QUERIES),
    )
    db.engine("vectorized").preload()
    for system in FIGURE8_SYSTEMS:
        engine = db.engine(system.engine_kind)
        times = []
        for sql in QUERIES.values():
            if system.engine_kind == "hique":
                prepared = engine.prepare(sql, use_cache=False)
                times.append(
                    _timed(lambda: engine.execute_prepared(prepared))
                )
            else:
                times.append(_timed(lambda: engine.execute(sql)))
        result.add(system.label, *times)
    result.note(
        "PostgreSQL*/System X*/MonetDB* are this repo's analogues "
        "(DESIGN.md §2); preparation excluded, as in the paper."
    )
    return result


def make_tpch_database(scale_factor: float) -> Database:
    """A database loaded with TPC-H data at the given scale factor."""
    db = Database(buffer_capacity=65_536)
    generate_tpch(db.catalog, scale_factor=scale_factor)
    return db


# -- Table III: preparation cost ----------------------------------------------------------------------------


def table3(
    scale: str | Scale = "small", db: Database | None = None
) -> ExperimentResult:
    """Table III: query preparation cost for the TPC-H queries."""
    sizes = get_scale(scale)
    if db is None:
        db = make_tpch_database(sizes.tpch_sf)
    result = ExperimentResult(
        "Table III: query preparation cost",
        [
            "Query", "Parse (ms)", "Optimize (ms)", "Generate (ms)",
            "Compile -O0 (ms)", "Compile -O2 (ms)",
            "Source (bytes)", "Compiled (bytes)",
        ],
    )
    engine: HiqueEngine = db.engine("hique")
    for name, sql in QUERIES.items():
        prepared_o0 = engine.prepare(
            sql, name=name, opt_level=OPT_O0, use_cache=False
        )
        prepared_o2 = engine.prepare(
            sql, name=name, opt_level=OPT_O2, use_cache=False
        )
        timings = prepared_o2.timings
        result.add(
            name,
            round(timings.parse_seconds * 1000, 3),
            round(timings.optimize_seconds * 1000, 3),
            round(timings.generate_seconds * 1000, 3),
            round(prepared_o0.timings.compile_seconds * 1000, 3),
            round(timings.compile_seconds * 1000, 3),
            prepared_o2.compiled.source_bytes,
            prepared_o2.compiled.compiled_bytes,
        )
    return result


# -- everything -----------------------------------------------------------------------------------------------


def run_all(scale: str | Scale = "small") -> list[ExperimentResult]:
    """Run the full experiment suite (used by the examples and docs)."""
    results: list[ExperimentResult] = []
    results.extend(fig5(scale))
    results.extend(fig6(scale))
    results.append(table2(scale))
    results.append(fig7a(scale))
    results.append(fig7b(scale))
    results.append(fig7c(scale))
    results.append(fig7d(scale))
    sizes = get_scale(scale)
    db = make_tpch_database(sizes.tpch_sf)
    results.append(fig8(scale, db=db))
    results.append(table3(scale, db=db))
    return results
