"""Expression compilation: bound expressions → closures or source text.

Two backends share the same traversal:

* :func:`make_evaluator` / :func:`make_predicate` build Python closures.
  The iterator engines use these — they are the Python analogue of the
  paper's *generic* evaluation functions (a call per expression per
  tuple).
* :func:`expr_source` / :func:`predicate_source` emit Python source
  fragments over a row variable (``row[3] * (1 - row[5])``).  The HIQUE
  code generator splices these into its templates, which is exactly the
  paper's "revert separate function calls for data accessing and
  predicate evaluation to pointer casts and primitive data comparisons".
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from repro.errors import CodegenError, PlanError
from repro.plan.layout import ColumnLayout
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundLiteral,
    BoundParameter,
)

#: Local variable the generated code binds to ``ctx.params``; every
#: source fragment for a :class:`BoundParameter` indexes into it.
PARAMS_LOCAL = "_params"

_ARITH_FUNCS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARE_FUNCS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

#: SQL comparison spelling → Python operator source.
COMPARE_SOURCE = {
    "=": "==",
    "<>": "!=",
    "<": "<",
    ">": ">",
    "<=": "<=",
    ">=": ">=",
}


# -- closure backend ------------------------------------------------------------


def make_evaluator(
    expr: BoundExpr,
    layout: ColumnLayout,
    params: Sequence[Any] | None = None,
) -> Callable[[Sequence[Any]], Any]:
    """A ``row -> value`` closure for a scalar (non-aggregate) expression."""
    if isinstance(expr, BoundLiteral):
        value = expr.value
        return lambda row: value
    if isinstance(expr, BoundParameter):
        if params is None:
            raise PlanError(
                f"parameter ?{expr.index + 1} evaluated without a "
                f"parameter vector"
            )
        value = params[expr.index]
        return lambda row: value
    if isinstance(expr, BoundColumn):
        position = layout.position(expr)
        return lambda row: row[position]
    if isinstance(expr, BoundArithmetic):
        left = make_evaluator(expr.left, layout, params)
        right = make_evaluator(expr.right, layout, params)
        func = _ARITH_FUNCS[expr.op]
        return lambda row: func(left(row), right(row))
    if isinstance(expr, BoundAggregate):
        raise PlanError("aggregates cannot be evaluated per row")
    raise PlanError(f"cannot evaluate {expr!r}")


def make_predicate(
    comparison: BoundComparison,
    layout: ColumnLayout,
    params: Sequence[Any] | None = None,
) -> Callable[[Sequence[Any]], bool]:
    """A ``row -> bool`` closure for one comparison."""
    left = make_evaluator(comparison.left, layout, params)
    right = make_evaluator(comparison.right, layout, params)
    func = _COMPARE_FUNCS[comparison.op]
    return lambda row: func(left(row), right(row))


def make_conjunction(
    comparisons: Sequence[BoundComparison],
    layout: ColumnLayout,
    params: Sequence[Any] | None = None,
) -> Callable[[Sequence[Any]], bool]:
    """A ``row -> bool`` closure AND-ing all comparisons (empty → True)."""
    if not comparisons:
        return lambda row: True
    predicates = [make_predicate(c, layout, params) for c in comparisons]
    if len(predicates) == 1:
        return predicates[0]

    def conjunction(row: Sequence[Any]) -> bool:
        for predicate in predicates:
            if not predicate(row):
                return False
        return True

    return conjunction


# -- source backend ---------------------------------------------------------------


def literal_source(value: Any) -> str:
    """Python source for a constant (strings repr'd, numbers verbatim)."""
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def expr_source(expr: BoundExpr, layout: ColumnLayout, row_var: str) -> str:
    """Python source for a scalar expression over ``row_var``."""
    if isinstance(expr, BoundLiteral):
        return literal_source(expr.value)
    if isinstance(expr, BoundParameter):
        return f"{PARAMS_LOCAL}[{expr.index}]"
    if isinstance(expr, BoundColumn):
        return f"{row_var}[{layout.position(expr)}]"
    if isinstance(expr, BoundArithmetic):
        left = expr_source(expr.left, layout, row_var)
        right = expr_source(expr.right, layout, row_var)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, BoundAggregate):
        raise CodegenError("aggregate reached scalar source emission")
    raise CodegenError(f"cannot emit source for {expr!r}")


def predicate_source(
    comparison: BoundComparison, layout: ColumnLayout, row_var: str
) -> str:
    """Python source for one comparison over ``row_var``."""
    left = expr_source(comparison.left, layout, row_var)
    right = expr_source(comparison.right, layout, row_var)
    return f"{left} {COMPARE_SOURCE[comparison.op]} {right}"


def conjunction_source(
    comparisons: Sequence[BoundComparison],
    layout: ColumnLayout,
    row_var: str,
) -> str:
    """Source for the AND of all comparisons (empty list → ``True``)."""
    if not comparisons:
        return "True"
    return " and ".join(
        predicate_source(c, layout, row_var) for c in comparisons
    )


# -- resolver-based source backend --------------------------------------------------
#
# Scan staging binds columns to *local field variables* (the value was
# just unpacked from the page buffer), not to row indexing.  These
# variants take a resolver callback instead of a layout.


def expr_source_resolved(
    expr: BoundExpr, resolve: Callable[[BoundColumn], str]
) -> str:
    """Source for an expression with caller-controlled column spelling."""
    if isinstance(expr, BoundLiteral):
        return literal_source(expr.value)
    if isinstance(expr, BoundParameter):
        return f"{PARAMS_LOCAL}[{expr.index}]"
    if isinstance(expr, BoundColumn):
        return resolve(expr)
    if isinstance(expr, BoundArithmetic):
        left = expr_source_resolved(expr.left, resolve)
        right = expr_source_resolved(expr.right, resolve)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, BoundAggregate):
        raise CodegenError("aggregate reached scalar source emission")
    raise CodegenError(f"cannot emit source for {expr!r}")


def conjunction_source_resolved(
    comparisons: Sequence[BoundComparison],
    resolve: Callable[[BoundColumn], str],
) -> str:
    """Resolver-based variant of :func:`conjunction_source`."""
    if not comparisons:
        return "True"
    parts = []
    for comparison in comparisons:
        left = expr_source_resolved(comparison.left, resolve)
        right = expr_source_resolved(comparison.right, resolve)
        parts.append(f"{left} {COMPARE_SOURCE[comparison.op]} {right}")
    return " and ".join(parts)


# -- parameter detection ------------------------------------------------------------
#
# Templates hoist ``ctx.params`` into a function-local (PARAMS_LOCAL)
# only when the operator's expressions actually reference a parameter,
# keeping fully-constant generated code byte-identical to before.


def contains_parameter(expr: BoundExpr | None) -> bool:
    """Whether a bound expression references an execute-time parameter."""
    if expr is None:
        return False
    if isinstance(expr, BoundParameter):
        return True
    if isinstance(expr, BoundArithmetic):
        return contains_parameter(expr.left) or contains_parameter(expr.right)
    if isinstance(expr, BoundAggregate):
        return contains_parameter(expr.argument)
    return False


def comparisons_contain_parameter(
    comparisons: Sequence[BoundComparison],
) -> bool:
    """Whether any comparison in a conjunction references a parameter."""
    return any(
        contains_parameter(c.left) or contains_parameter(c.right)
        for c in comparisons
    )
