"""Column layouts: mapping bound column references to physical slots.

Every operator in a physical plan produces rows with a fixed column
order.  A :class:`ColumnLayout` records that order as a list of
*(binding, column, dtype)* slots so that expression compilation — for
iterator closures and for generated source alike — can turn a
:class:`~repro.sql.bound.BoundColumn` into a plain ``row[i]`` access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PlanError
from repro.sql.bound import BoundColumn
from repro.storage.types import DataType


@dataclass(frozen=True)
class ColumnSlot:
    """One physical output column of an operator."""

    binding: str
    column: str
    dtype: DataType

    @property
    def key(self) -> tuple[str, str]:
        return (self.binding, self.column)

    def display(self) -> str:
        return f"{self.binding}.{self.column}"


class ColumnLayout:
    """An ordered set of slots with fast position lookup."""

    def __init__(self, slots: Iterable[ColumnSlot]):
        self.slots: tuple[ColumnSlot, ...] = tuple(slots)
        self._index: dict[tuple[str, str], int] = {}
        for i, slot in enumerate(self.slots):
            if slot.key in self._index:
                raise PlanError(f"duplicate slot {slot.display()}")
            self._index[slot.key] = i

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self) -> Iterator[ColumnSlot]:
        return iter(self.slots)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnLayout) and self.slots == other.slots

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"ColumnLayout({', '.join(s.display() for s in self.slots)})"

    def position(self, column: BoundColumn) -> int:
        """Slot index of a bound column; raises PlanError when absent."""
        try:
            return self._index[(column.binding, column.column)]
        except KeyError:
            raise PlanError(
                f"column {column.display()} not in layout "
                f"{[s.display() for s in self.slots]}"
            ) from None

    def contains(self, column: BoundColumn) -> bool:
        return (column.binding, column.column) in self._index

    def position_of_key(self, binding: str, column: str) -> int:
        try:
            return self._index[(binding, column)]
        except KeyError:
            raise PlanError(f"column {binding}.{column} not in layout") from None

    def concat(self, other: "ColumnLayout") -> "ColumnLayout":
        return ColumnLayout(self.slots + other.slots)

    def select(self, keys: Iterable[tuple[str, str]]) -> "ColumnLayout":
        return ColumnLayout(
            self.slots[self._index[key]] for key in keys
        )


def layout_of_columns(columns: Iterable[BoundColumn]) -> ColumnLayout:
    """Layout with one slot per bound column, de-duplicated, in order."""
    seen: dict[tuple[str, str], ColumnSlot] = {}
    for column in columns:
        key = (column.binding, column.column)
        if key not in seen:
            seen[key] = ColumnSlot(column.binding, column.column, column.dtype)
    return ColumnLayout(seen.values())
