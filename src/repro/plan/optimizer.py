"""The query optimizer: bound query → physical descriptor list.

Follows the paper's Section IV: a greedy approach whose objective is to
minimise the size of intermediate results, choosing the evaluation
algorithm for each operator and the parameters used to instantiate the
code generator's templates.  It keeps track of *interesting orders*
(merge joins leave their output sorted, which downstream sort-based
aggregation and ORDER BY can reuse) and *join teams* (sets of tables
joined on a common key, evaluated in one deeply-nested loop block).

Algorithm selection is driven by the same cache-consciousness rules the
paper describes:

* **merge join** when both staged inputs fit in (half) the L2 cache —
  full sorts at that size are cache resident;
* **hybrid hash-sort-merge join** otherwise: coarse hash partitioning
  into ``M`` partitions sized to fit half the L2 cache, partitions
  sorted lazily right before merging;
* **fine partitioning** when the key's distinct count is small enough
  for a value-partition map — corresponding partitions then match
  entirely and need no sort;
* **map aggregation** when the value directories plus aggregate arrays
  fit comfortably in L2; **sort aggregation** when the input already
  arrives sorted on the grouping key; **hybrid hash-sort aggregation**
  otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError, UnsupportedSqlError
from repro.plan.descriptors import (
    AGG_HYBRID,
    AGG_MAP,
    AGG_SORT,
    JOIN_HASH,
    JOIN_HYBRID,
    JOIN_MERGE,
    JOIN_NESTED,
    PREP_NONE,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Aggregate,
    Join,
    Limit,
    MultiwayJoin,
    Operator,
    PhysicalPlan,
    Prep,
    Project,
    Restage,
    ScanStage,
    Sort,
)
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.sql.bound import (
    BoundColumn,
    BoundComparison,
    BoundQuery,
    JoinPredicate,
    columns_in,
)
from repro.storage.catalog import Catalog


@dataclass
class PlannerConfig:
    """Tuning knobs; defaults model the paper's Core 2 Duo 6300."""

    l2_bytes: int = 2 * 1024 * 1024
    d1_bytes: int = 32 * 1024
    #: A staged input "fits" when it occupies at most this fraction of L2.
    l2_fit_fraction: float = 0.5
    #: Fine (value-directory) partitioning bound on key distinct count.
    fine_partition_max_distinct: int = 512
    #: Map aggregation: directories + aggregate arrays must fit in this
    #: fraction of L2.
    map_agg_l2_fraction: float = 0.5
    #: Detect join teams (Figure 7(b) toggles this).
    enable_join_teams: bool = True
    #: Experiment overrides — force algorithm choices.
    force_join: str | None = None
    force_agg: str | None = None
    force_partitions: int | None = None
    #: Assumed bytes per staged field (values are Python objects at run
    #: time; 8 models the on-page width driving the paper's decisions).
    bytes_per_field: int = 8

    def staged_bytes(self, rows: float, num_fields: int) -> float:
        return rows * max(num_fields, 1) * self.bytes_per_field

    def fits_l2(self, nbytes: float) -> bool:
        return nbytes <= self.l2_bytes * self.l2_fit_fraction


@dataclass
class _Rel:
    """A planned relation: either a staged base table or a join result."""

    op_id: int
    bindings: set[str]
    layout: ColumnLayout
    est_rows: float
    order: tuple[int, ...] = ()


@dataclass
class Optimizer:
    """Plans one bound query into a :class:`PhysicalPlan`."""

    catalog: Catalog
    config: PlannerConfig = field(default_factory=PlannerConfig)

    # -- entry point -----------------------------------------------------------
    def plan(self, query: BoundQuery) -> PhysicalPlan:
        self._next_id = 0
        self._query = query
        plan = PhysicalPlan()

        needed = self._needed_columns(query)
        rels = self._plan_joins(query, plan, needed)
        rel = rels

        if query.is_grouped:
            rel = self._plan_aggregation(query, plan, rel)
        else:
            rel = self._plan_projection(query, plan, rel)

        rel = self._plan_order_limit(query, plan, rel)
        plan.output_names = query.output_names()
        plan.validate()
        return plan

    # -- id allocation ------------------------------------------------------------
    def _new_id(self) -> int:
        op_id = self._next_id
        self._next_id += 1
        return op_id

    # -- column requirements --------------------------------------------------------
    def _needed_columns(self, query: BoundQuery) -> dict[str, list[BoundColumn]]:
        """Columns each binding must stage (projection pushdown)."""
        needed: dict[str, dict[str, BoundColumn]] = {
            t.binding: {} for t in query.tables
        }

        def note(column: BoundColumn) -> None:
            needed[column.binding].setdefault(column.column, column)

        for output in query.select:
            for column in columns_in(output.expr):
                note(column)
        for column in query.group_by:
            note(column)
        for predicate in query.joins:
            note(predicate.left)
            note(predicate.right)
        result: dict[str, list[BoundColumn]] = {}
        for bound_table in query.tables:
            columns = list(needed[bound_table.binding].values())
            if not columns:
                # COUNT(*)-style queries still need one staged field.
                first = bound_table.table.schema[0]
                columns = [
                    BoundColumn(
                        bound_table.binding, first.name, first.dtype
                    )
                ]
            result[bound_table.binding] = columns
        return result

    # -- statistics ---------------------------------------------------------------------
    def _table_stats(self, binding: str):
        table = self._query.binding(binding).table
        return self.catalog.stats(table.name)

    def _distinct(self, column: BoundColumn) -> int:
        stats = self._table_stats(column.binding)
        return stats.distinct_of(column.column)

    def _scan_estimate(self, binding: str) -> float:
        table = self._query.binding(binding).table
        rows = float(max(table.num_rows, 1))
        for comparison in self._query.filters.get(binding, ()):
            rows *= _selectivity(comparison, self._table_stats(binding))
        return max(rows, 1.0)

    def _join_estimate(
        self, left: _Rel, right: _Rel, predicate: JoinPredicate
    ) -> float:
        d_left = self._distinct(predicate.left)
        d_right = self._distinct(predicate.right)
        denom = max(d_left, d_right, 1)
        return max(left.est_rows * right.est_rows / denom, 1.0)

    # -- scans ---------------------------------------------------------------------------
    def _emit_scan(
        self,
        plan: PhysicalPlan,
        binding: str,
        columns: list[BoundColumn],
        prep: Prep,
    ) -> _Rel:
        table = self._query.binding(binding).table
        layout = ColumnLayout(
            ColumnSlot(c.binding, c.column, c.dtype) for c in columns
        )
        order: tuple[int, ...] = ()
        if prep.kind == PREP_SORT:
            order = prep.keys
        scan = ScanStage(
            op_id=self._new_id(),
            output_layout=layout,
            binding=binding,
            table=table,
            filters=tuple(self._query.filters.get(binding, ())),
            prep=prep,
            output_order=order,
        )
        plan.operators.append(scan)
        return _Rel(
            op_id=scan.op_id,
            bindings={binding},
            layout=layout,
            est_rows=self._scan_estimate(binding),
            order=order,
        )

    # -- join planning -------------------------------------------------------------------
    def _plan_joins(
        self,
        query: BoundQuery,
        plan: PhysicalPlan,
        needed: dict[str, list[BoundColumn]],
    ) -> _Rel:
        if len(query.tables) == 1:
            binding = query.tables[0].binding
            return self._emit_scan(plan, binding, needed[binding], Prep())

        if not query.joins:
            return self._plan_cartesian(query, plan, needed)

        team = self._detect_join_team(query) if self.config.enable_join_teams else None
        if team is not None:
            return self._plan_join_team(query, plan, needed, team)
        return self._plan_binary_joins(query, plan, needed)

    def _detect_join_team(self, query: BoundQuery) -> list[str] | None:
        """A join team exists when ≥3 tables join on one key class."""
        if len(query.tables) < 3:
            return None
        classes = _key_equivalence_classes(query.joins)
        if len(classes) != 1:
            return None
        bindings = {b for predicate in query.joins for b in predicate.bindings()}
        if bindings != {t.binding for t in query.tables}:
            return None
        return [t.binding for t in query.tables]

    def _plan_join_team(
        self,
        query: BoundQuery,
        plan: PhysicalPlan,
        needed: dict[str, list[BoundColumn]],
        team: list[str],
    ) -> _Rel:
        # One key column per binding, from the equivalence class.
        key_of = _team_keys(query.joins)
        total_bytes = 0.0
        for binding in team:
            total_bytes += self.config.staged_bytes(
                self._scan_estimate(binding), len(needed[binding])
            )
        if self.config.force_join is not None:
            # Teams only come in merge and hybrid flavours.
            algorithm = (
                JOIN_MERGE
                if self.config.force_join == JOIN_MERGE
                else JOIN_HYBRID
            )
        else:
            algorithm = (
                JOIN_MERGE if self.config.fits_l2(total_bytes) else JOIN_HYBRID
            )
        partitions = self._choose_partitions(total_bytes)

        rels: list[_Rel] = []
        key_positions: list[int] = []
        for binding in team:
            key = key_of[binding]
            columns = needed[binding]
            layout = ColumnLayout(
                ColumnSlot(c.binding, c.column, c.dtype) for c in columns
            )
            key_pos = layout.position(key)
            if algorithm == JOIN_MERGE:
                prep = Prep(PREP_SORT, (key_pos,))
            else:
                # The hybrid team partitions while staging; partitions are
                # sorted lazily right before merging (paper, Section V-B).
                prep = Prep(PREP_PARTITION, (key_pos,), partitions)
            rels.append(self._emit_scan(plan, binding, columns, prep))
            key_positions.append(key_pos)

        layout = rels[0].layout
        for rel in rels[1:]:
            layout = layout.concat(rel.layout)
        if algorithm == JOIN_MERGE:
            # The first input's key column keeps its position in the
            # concatenated layout, and merge output is ordered on it.
            order: tuple[int, ...] = (key_positions[0],)
        else:
            order = ()
        join = MultiwayJoin(
            op_id=self._new_id(),
            output_layout=layout,
            algorithm=algorithm,
            input_ops=tuple(r.op_id for r in rels),
            key_positions=tuple(key_positions),
            output_order=order,
        )
        plan.operators.append(join)
        est = rels[0].est_rows
        for rel, binding in zip(rels[1:], team[1:]):
            est = est * rel.est_rows / max(self._distinct(key_of[binding]), 1)
        return _Rel(
            op_id=join.op_id,
            bindings=set(team),
            layout=layout,
            est_rows=max(est, 1.0),
            order=join.output_order,
        )

    def _plan_binary_joins(
        self,
        query: BoundQuery,
        plan: PhysicalPlan,
        needed: dict[str, list[BoundColumn]],
    ) -> _Rel:
        remaining_predicates = list(query.joins)
        pending: dict[str, list[BoundColumn]] = dict(needed)
        staged: dict[str, _Rel] = {}

        # Greedy: pick the cheapest joinable pair first, then extend.
        first = self._pick_first_pair(query, remaining_predicates)
        current = self._join_pair(
            plan, pending, staged, first, remaining_predicates, None
        )
        joined = set(current.bindings)
        while joined != {t.binding for t in query.tables}:
            predicate = self._pick_next_predicate(
                remaining_predicates, joined
            )
            if predicate is None:
                raise UnsupportedSqlError(
                    "join graph is disconnected (cartesian products across "
                    "join components are not supported)"
                )
            current = self._join_pair(
                plan, pending, staged, predicate, remaining_predicates, current
            )
            joined = set(current.bindings)
        return current

    def _pick_first_pair(
        self, query: BoundQuery, predicates: list[JoinPredicate]
    ) -> JoinPredicate:
        best = None
        best_cost = None
        for predicate in predicates:
            left_b, right_b = predicate.bindings()
            cost = (
                self._scan_estimate(left_b)
                * self._scan_estimate(right_b)
                / max(
                    self._distinct(predicate.left),
                    self._distinct(predicate.right),
                    1,
                )
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = predicate, cost
        assert best is not None
        return best

    @staticmethod
    def _pick_next_predicate(
        predicates: list[JoinPredicate], joined: set[str]
    ) -> JoinPredicate | None:
        for predicate in predicates:
            left_b, right_b = predicate.bindings()
            if (left_b in joined) != (right_b in joined):
                return predicate
        return None

    def _join_pair(
        self,
        plan: PhysicalPlan,
        pending: dict[str, list[BoundColumn]],
        staged: dict[str, _Rel],
        predicate: JoinPredicate,
        remaining: list[JoinPredicate],
        current: _Rel | None,
    ) -> _Rel:
        remaining.remove(predicate)
        left_b, right_b = predicate.bindings()

        def rel_for(binding: str, key: BoundColumn, prep_factory) -> _Rel:
            if current is not None and binding in current.bindings:
                return current
            columns = pending[binding]
            layout = ColumnLayout(
                ColumnSlot(c.binding, c.column, c.dtype) for c in columns
            )
            key_pos = layout.position(key)
            return self._emit_scan(
                plan, binding, columns, prep_factory(key_pos)
            )

        # Decide algorithm from estimated staged sizes of both sides.
        left_rows = (
            current.est_rows
            if current is not None and left_b in current.bindings
            else self._scan_estimate(left_b)
        )
        right_rows = (
            current.est_rows
            if current is not None and right_b in current.bindings
            else self._scan_estimate(right_b)
        )
        left_fields = (
            len(current.layout)
            if current is not None and left_b in current.bindings
            else len(pending[left_b])
        )
        right_fields = (
            len(current.layout)
            if current is not None and right_b in current.bindings
            else len(pending[right_b])
        )
        total_bytes = self.config.staged_bytes(
            left_rows, left_fields
        ) + self.config.staged_bytes(right_rows, right_fields)
        algorithm = self.config.force_join or (
            JOIN_MERGE if self.config.fits_l2(total_bytes) else JOIN_HYBRID
        )
        partitions = self._choose_partitions(total_bytes)
        fine = self._is_fine(predicate.left) and self._is_fine(predicate.right)
        if algorithm == JOIN_HASH and not fine:
            algorithm = JOIN_HYBRID  # coarse partitions need the sort-merge

        def prep_factory(key_pos: int) -> Prep:
            if algorithm == JOIN_MERGE:
                return Prep(PREP_SORT, (key_pos,))
            if algorithm == JOIN_HASH:
                return Prep(PREP_PARTITION, (key_pos,), partitions, fine=True)
            if algorithm == JOIN_NESTED:
                return Prep()
            # Hybrid: coarse-partition while staging; the join template
            # sorts each pair of corresponding partitions just before
            # merging them so they are L2 resident (Section V-B).
            return Prep(PREP_PARTITION, (key_pos,), partitions, fine=False)

        left_rel = rel_for(left_b, predicate.left, prep_factory)
        right_rel = rel_for(right_b, predicate.right, prep_factory)
        if left_rel is right_rel:
            raise PlanError("join predicate within a single relation")

        # An intermediate feeding a merge/hybrid join must be re-staged
        # unless its order already matches the join key.
        left_rel = self._restage_if_needed(
            plan, left_rel, predicate.left, algorithm, partitions
        )
        right_rel = self._restage_if_needed(
            plan, right_rel, predicate.right, algorithm, partitions
        )

        left_key = left_rel.layout.position(predicate.left)
        right_key = right_rel.layout.position(predicate.right)
        layout = left_rel.layout.concat(right_rel.layout)
        order = (left_key,) if algorithm == JOIN_MERGE else ()

        # Any further predicate now internal to the joined pair becomes
        # a residual conjunct checked over the join output.
        joined_bindings = left_rel.bindings | right_rel.bindings
        residuals: list[BoundComparison] = []
        if algorithm == JOIN_NESTED:
            # The bare nested-loops template enumerates every pair and
            # stages nothing, so the driving equi predicate itself must
            # be enforced as a residual — unlike merge/hash/hybrid,
            # whose staging + loop bounds embed it.  (The cartesian
            # path never has a predicate to begin with.)
            residuals.append(
                BoundComparison("=", predicate.left, predicate.right)
            )
        for other in list(remaining):
            if set(other.bindings()) <= joined_bindings:
                remaining.remove(other)
                residuals.append(
                    BoundComparison("=", other.left, other.right)
                )
        join = Join(
            op_id=self._new_id(),
            output_layout=layout,
            algorithm=algorithm,
            left_op=left_rel.op_id,
            right_op=right_rel.op_id,
            left_key=left_key,
            right_key=right_key,
            residuals=tuple(residuals),
            output_order=order,
        )
        plan.operators.append(join)
        return _Rel(
            op_id=join.op_id,
            bindings=left_rel.bindings | right_rel.bindings,
            layout=layout,
            est_rows=self._join_estimate(left_rel, right_rel, predicate),
            order=order,
        )

    def _restage_if_needed(
        self,
        plan: PhysicalPlan,
        rel: _Rel,
        key: BoundColumn,
        algorithm: str,
        partitions: int,
    ) -> _Rel:
        """Base-table scans stage during the scan; intermediates that are
        not already ordered on the join key get an explicit Restage."""
        operator = plan.op(rel.op_id)
        if isinstance(operator, ScanStage):
            return rel
        key_pos = rel.layout.position(key)
        if algorithm == JOIN_MERGE and rel.order[:1] == (key_pos,):
            return rel
        if algorithm == JOIN_NESTED:
            return rel
        if algorithm == JOIN_MERGE:
            prep = Prep(PREP_SORT, (key_pos,))
            order: tuple[int, ...] = (key_pos,)
        elif algorithm == JOIN_HASH:
            prep = Prep(PREP_PARTITION, (key_pos,), partitions, fine=True)
            order = ()
        else:
            prep = Prep(PREP_PARTITION, (key_pos,), partitions)
            order = ()
        restage = Restage(
            op_id=self._new_id(),
            output_layout=rel.layout,
            input_op=rel.op_id,
            prep=prep,
            output_order=order,
        )
        plan.operators.append(restage)
        return _Rel(
            op_id=restage.op_id,
            bindings=rel.bindings,
            layout=rel.layout,
            est_rows=rel.est_rows,
            order=order,
        )

    def _plan_cartesian(
        self,
        query: BoundQuery,
        plan: PhysicalPlan,
        needed: dict[str, list[BoundColumn]],
    ) -> _Rel:
        """Pure cross products use the blocked nested-loops template."""
        rels = [
            self._emit_scan(plan, t.binding, needed[t.binding], Prep())
            for t in query.tables
        ]
        current = rels[0]
        for rel in rels[1:]:
            layout = current.layout.concat(rel.layout)
            join = Join(
                op_id=self._new_id(),
                output_layout=layout,
                algorithm=JOIN_NESTED,
                left_op=current.op_id,
                right_op=rel.op_id,
                left_key=0,
                right_key=0,
            )
            plan.operators.append(join)
            current = _Rel(
                op_id=join.op_id,
                bindings=current.bindings | rel.bindings,
                layout=layout,
                est_rows=current.est_rows * rel.est_rows,
            )
        return current

    def _choose_partitions(self, total_bytes: float) -> int:
        if self.config.force_partitions is not None:
            return self.config.force_partitions
        target = self.config.l2_bytes * self.config.l2_fit_fraction
        required = max(int(total_bytes / max(target, 1)) + 1, 2)
        return _next_pow2(required)

    def _is_fine(self, key: BoundColumn) -> bool:
        return (
            self._distinct(key) <= self.config.fine_partition_max_distinct
        )

    # -- aggregation -------------------------------------------------------------------
    def _plan_aggregation(
        self, query: BoundQuery, plan: PhysicalPlan, rel: _Rel
    ) -> _Rel:
        group_positions = tuple(
            rel.layout.position(c) for c in query.group_by
        )
        directory_sizes = tuple(
            self._distinct(c) for c in query.group_by
        )
        algorithm = self.config.force_agg or self._choose_agg_algorithm(
            query, rel, group_positions, directory_sizes
        )

        rel = self._stage_for_aggregation(plan, rel, group_positions, algorithm)

        output_layout = _output_layout(query)
        order: tuple[int, ...] = ()
        if algorithm == AGG_SORT and group_positions:
            order = tuple(range(len(group_positions)))
        aggregate = Aggregate(
            op_id=self._new_id(),
            output_layout=output_layout,
            input_op=rel.op_id,
            algorithm=algorithm,
            group_positions=group_positions,
            outputs=tuple(query.select),
            directory_sizes=directory_sizes,
            output_order=order,
        )
        plan.operators.append(aggregate)
        est_groups = 1.0
        for size in directory_sizes:
            est_groups *= max(size, 1)
        est_groups = min(est_groups, rel.est_rows) if directory_sizes else 1.0
        return _Rel(
            op_id=aggregate.op_id,
            bindings=rel.bindings,
            layout=output_layout,
            est_rows=est_groups,
            order=order,
        )

    def _choose_agg_algorithm(
        self,
        query: BoundQuery,
        rel: _Rel,
        group_positions: tuple[int, ...],
        directory_sizes: tuple[int, ...],
    ) -> str:
        if not group_positions:
            return AGG_MAP  # single global group: one pass, no staging
        product = 1
        for size in directory_sizes:
            product *= max(size, 1)
        num_aggregates = sum(
            1 for o in query.select if o.kind == "aggregate"
        )
        footprint = product * (num_aggregates + 1) * self.config.bytes_per_field
        directories = sum(directory_sizes) * self.config.bytes_per_field * 2
        if (
            footprint + directories
            <= self.config.l2_bytes * self.config.map_agg_l2_fraction
        ):
            return AGG_MAP
        if rel.order and rel.order[: len(group_positions)] == group_positions:
            return AGG_SORT
        return AGG_HYBRID

    def _stage_for_aggregation(
        self,
        plan: PhysicalPlan,
        rel: _Rel,
        group_positions: tuple[int, ...],
        algorithm: str,
    ) -> _Rel:
        if algorithm == AGG_MAP or not group_positions:
            return rel
        if algorithm == AGG_SORT:
            if rel.order[: len(group_positions)] == group_positions:
                return rel
            prep = Prep(PREP_SORT, group_positions)
            order = group_positions
        else:  # hybrid: partition on first key, sort partitions on all keys
            partitions = self._choose_partitions(
                self.config.staged_bytes(rel.est_rows, len(rel.layout))
            )
            prep = Prep(
                PREP_PARTITION_SORT, group_positions, partitions
            )
            order = ()

        operator = plan.op(rel.op_id)
        if isinstance(operator, ScanStage) and operator.prep.kind == PREP_NONE:
            # Interleave staging with the scan, as the paper does.
            operator.prep = prep
            operator.output_order = order
            rel.order = order
            return rel
        restage = Restage(
            op_id=self._new_id(),
            output_layout=rel.layout,
            input_op=rel.op_id,
            prep=prep,
            output_order=order,
        )
        plan.operators.append(restage)
        return _Rel(
            op_id=restage.op_id,
            bindings=rel.bindings,
            layout=rel.layout,
            est_rows=rel.est_rows,
            order=order,
        )

    # -- projection / order / limit ----------------------------------------------------
    def _plan_projection(
        self, query: BoundQuery, plan: PhysicalPlan, rel: _Rel
    ) -> _Rel:
        identity = len(query.select) == len(rel.layout) and all(
            isinstance(o.expr, BoundColumn)
            and rel.layout.position(o.expr) == i
            for i, o in enumerate(query.select)
        )
        if identity:
            return rel
        output_layout = _output_layout(query)
        project = Project(
            op_id=self._new_id(),
            output_layout=output_layout,
            input_op=rel.op_id,
            outputs=tuple(query.select),
            output_order=_projected_order(query, rel),
        )
        plan.operators.append(project)
        return _Rel(
            op_id=project.op_id,
            bindings=rel.bindings,
            layout=output_layout,
            est_rows=rel.est_rows,
            order=project.output_order,
        )

    def _plan_order_limit(
        self, query: BoundQuery, plan: PhysicalPlan, rel: _Rel
    ) -> _Rel:
        if query.order_by:
            wanted = tuple(query.order_by)
            already = all(asc for _, asc in wanted) and rel.order[
                : len(wanted)
            ] == tuple(pos for pos, _ in wanted)
            if not already:
                sort = Sort(
                    op_id=self._new_id(),
                    output_layout=rel.layout,
                    input_op=rel.op_id,
                    keys=wanted,
                    output_order=tuple(pos for pos, _ in wanted),
                )
                plan.operators.append(sort)
                rel = _Rel(
                    op_id=sort.op_id,
                    bindings=rel.bindings,
                    layout=rel.layout,
                    est_rows=rel.est_rows,
                    order=sort.output_order,
                )
        if query.limit is not None:
            limit = Limit(
                op_id=self._new_id(),
                output_layout=rel.layout,
                input_op=rel.op_id,
                count=query.limit,
                output_order=rel.order,
            )
            plan.operators.append(limit)
            rel = _Rel(
                op_id=limit.op_id,
                bindings=rel.bindings,
                layout=rel.layout,
                est_rows=min(rel.est_rows, query.limit),
                order=rel.order,
            )
        return rel


# -- helpers ------------------------------------------------------------------------------


def _selectivity(comparison: BoundComparison, stats) -> float:
    """Classic textbook selectivities, with exact distincts when known."""
    column = None
    if isinstance(comparison.left, BoundColumn):
        column = comparison.left
    elif isinstance(comparison.right, BoundColumn):
        column = comparison.right
    if comparison.op == "=":
        if column is not None:
            return 1.0 / max(stats.distinct_of(column.column), 1)
        return 0.1
    if comparison.op == "<>":
        return 0.9
    return 1.0 / 3.0


def _key_equivalence_classes(
    joins: list[JoinPredicate],
) -> list[set[tuple[str, str]]]:
    """Union-find over join columns: each class is one join key."""
    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(x: tuple[str, str]) -> tuple[str, str]:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for predicate in joins:
        a = (predicate.left.binding, predicate.left.column)
        b = (predicate.right.binding, predicate.right.column)
        parent[find(a)] = find(b)

    classes: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for key in parent:
        classes.setdefault(find(key), set()).add(key)
    return list(classes.values())


def _team_keys(joins: list[JoinPredicate]) -> dict[str, BoundColumn]:
    """Binding → its key column, for a single-class join team."""
    keys: dict[str, BoundColumn] = {}
    for predicate in joins:
        keys.setdefault(predicate.left.binding, predicate.left)
        keys.setdefault(predicate.right.binding, predicate.right)
    return keys


def _output_layout(query: BoundQuery) -> ColumnLayout:
    """Layout of the final output columns.

    SQL allows duplicate output names (``SELECT r.v, s.v``); slots are
    keyed by position to stay unique — downstream operators (Sort,
    Limit) address output columns by position only.
    """
    return ColumnLayout(
        ColumnSlot(f"#{i}", output.name, output.dtype)
        for i, output in enumerate(query.select)
    )


def _projected_order(query: BoundQuery, rel: _Rel) -> tuple[int, ...]:
    """Propagate input order through an identity-ish projection."""
    if not rel.order:
        return ()
    order: list[int] = []
    for input_pos in rel.order:
        for i, output in enumerate(query.select):
            if (
                isinstance(output.expr, BoundColumn)
                and rel.layout.position(output.expr) == input_pos
            ):
                order.append(i)
                break
        else:
            break
    return tuple(order)


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
