"""Physical operator descriptors — the paper's topologically sorted list O.

The optimizer emits a :class:`PhysicalPlan`: an ordered list of operator
descriptors in which every operator consumes either base tables or the
output of an earlier operator (Section IV: "Each o_i has as input either
primary table(s), or the output of o_j, j < i").  The descriptor
"contains the algorithm to be used in the implementation of each
operator and additional information for initializing the code template
of this algorithm".

Descriptors are backend-neutral: the HIQUE code generator instantiates
templates from them, and the iterator engine builds a Volcano tree from
the very same plan, which is what makes the paper's iterators-vs-holistic
comparison apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError
from repro.plan.layout import ColumnLayout
from repro.sql.bound import BoundComparison, BoundOutput
from repro.storage.table import Table

# -- staging preparation -----------------------------------------------------------

#: Preparation kinds applied while staging an input (Section V-B:
#: "sorting, partitioning, and a hybrid approach").
PREP_NONE = "none"
PREP_SORT = "sort"
PREP_PARTITION = "partition"
PREP_PARTITION_SORT = "partition_sort"  # hybrid hash-sort staging


@dataclass(frozen=True)
class Prep:
    """How an input is pre-processed during staging."""

    kind: str = PREP_NONE
    keys: tuple[int, ...] = ()
    num_partitions: int = 1
    fine: bool = False  # fine-grained (value-directory) partitioning

    def __post_init__(self) -> None:
        valid = (PREP_NONE, PREP_SORT, PREP_PARTITION, PREP_PARTITION_SORT)
        if self.kind not in valid:
            raise PlanError(f"unknown prep kind {self.kind!r}")
        if self.kind != PREP_NONE and not self.keys:
            raise PlanError(f"prep {self.kind!r} requires keys")


# -- aggregate specification ----------------------------------------------------------

#: Aggregation algorithms (Section V-B).
AGG_SORT = "sort"
AGG_HYBRID = "hybrid"  # hybrid hash-sort
AGG_MAP = "map"  # value-directory map aggregation

#: Join algorithms (Section V-B).  All share the nested-loops template.
JOIN_MERGE = "merge"
JOIN_HASH = "hash"  # partition join (Grace-style), fine or coarse
JOIN_HYBRID = "hybrid"  # hybrid hash-sort-merge join
JOIN_NESTED = "nested"  # plain blocked nested loops (no staging order)


# -- operators ------------------------------------------------------------------------


@dataclass
class Operator:
    """Base descriptor: every operator owns an id and an output layout."""

    op_id: int
    output_layout: ColumnLayout
    #: Slot positions the output is sorted on, if any (interesting order).
    output_order: tuple[int, ...] = field(default=(), kw_only=True)

    @property
    def inputs(self) -> tuple[int, ...]:
        """Ids of the operators this one consumes (empty for scans)."""
        return ()


@dataclass
class ScanStage(Operator):
    """Stage one base table: scan, filter, project, optionally sort or
    partition — the paper's *data staging* step (one function per input).
    """

    binding: str = ""
    table: Table | None = None
    filters: tuple[BoundComparison, ...] = ()
    prep: Prep = field(default_factory=Prep)

    def __post_init__(self) -> None:
        if self.table is None:
            raise PlanError("ScanStage requires a table")


@dataclass
class Restage(Operator):
    """Re-prepare an intermediate result for its next consumer."""

    input_op: int = -1
    prep: Prep = field(default_factory=Prep)

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.input_op,)


@dataclass
class Join(Operator):
    """Binary join instantiating the nested-loops template."""

    algorithm: str = JOIN_MERGE
    left_op: int = -1
    right_op: int = -1
    left_key: int = 0  # slot position of the key in the left input
    right_key: int = 0
    #: Further equi-join conjuncts between the same inputs, evaluated
    #: over the join's output layout.
    residuals: tuple[BoundComparison, ...] = ()

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.left_op, self.right_op)


@dataclass
class MultiwayJoin(Operator):
    """A join team: n inputs joined on one key equivalence class in a
    single deeply-nested loop block without intermediate materialisation.
    """

    algorithm: str = JOIN_MERGE  # merge | hybrid
    input_ops: tuple[int, ...] = ()
    key_positions: tuple[int, ...] = ()  # one per input

    @property
    def inputs(self) -> tuple[int, ...]:
        return self.input_ops


@dataclass
class AggregateSpec:
    """One aggregate output: function + argument expression."""

    func: str  # sum | count | avg | min | max  (count with argument=None)
    argument: object | None  # BoundExpr over the input layout


@dataclass
class Aggregate(Operator):
    """Grouped aggregation; output columns follow the select list."""

    input_op: int = -1
    algorithm: str = AGG_SORT
    group_positions: tuple[int, ...] = ()
    outputs: tuple[BoundOutput, ...] = ()
    #: For map aggregation: estimated distinct count per group position,
    #: used to size the value directories and aggregate arrays.
    directory_sizes: tuple[int, ...] = ()

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.input_op,)


@dataclass
class Project(Operator):
    """Final expression evaluation for non-grouped queries."""

    input_op: int = -1
    outputs: tuple[BoundOutput, ...] = ()

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.input_op,)


@dataclass
class Sort(Operator):
    """Final ORDER BY over output rows (positions refer to the output)."""

    input_op: int = -1
    keys: tuple[tuple[int, bool], ...] = ()

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.input_op,)


@dataclass
class Limit(Operator):
    """Keep the first n output rows."""

    input_op: int = -1
    count: int = 0

    @property
    def inputs(self) -> tuple[int, ...]:
        return (self.input_op,)


@dataclass
class PhysicalPlan:
    """The ordered descriptor list plus result metadata."""

    operators: list[Operator] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    @property
    def root(self) -> Operator:
        if not self.operators:
            raise PlanError("empty plan")
        return self.operators[-1]

    def op(self, op_id: int) -> Operator:
        for operator in self.operators:
            if operator.op_id == op_id:
                return operator
        raise PlanError(f"no operator with id {op_id}")

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators)

    def validate(self) -> None:
        """Check topological order: inputs precede consumers."""
        seen: set[int] = set()
        for operator in self.operators:
            for input_id in operator.inputs:
                if input_id not in seen:
                    raise PlanError(
                        f"operator {operator.op_id} consumes {input_id} "
                        f"before it is produced"
                    )
            if operator.op_id in seen:
                raise PlanError(f"duplicate operator id {operator.op_id}")
            seen.add(operator.op_id)

    def explain(self) -> str:
        """Human-readable plan description (for tests and examples)."""
        lines = []
        for operator in self.operators:
            kind = type(operator).__name__
            detail = ""
            if isinstance(operator, ScanStage):
                detail = (
                    f" {operator.binding} prep={operator.prep.kind}"
                    f" filters={len(operator.filters)}"
                )
            elif isinstance(operator, Join):
                detail = (
                    f" {operator.algorithm} ({operator.left_op} ⋈ "
                    f"{operator.right_op})"
                )
            elif isinstance(operator, MultiwayJoin):
                detail = f" {operator.algorithm} team{operator.input_ops}"
            elif isinstance(operator, Aggregate):
                detail = (
                    f" {operator.algorithm} groups={operator.group_positions}"
                )
            elif isinstance(operator, Sort):
                detail = f" keys={operator.keys}"
            elif isinstance(operator, Restage):
                detail = f" prep={operator.prep.kind} of {operator.input_op}"
            elif isinstance(operator, Limit):
                detail = f" {operator.count}"
            lines.append(f"o{operator.op_id}: {kind}{detail}")
        return "\n".join(lines)
