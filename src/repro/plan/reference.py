"""A deliberately naive reference evaluator for differential testing.

Evaluates a :class:`~repro.sql.bound.BoundQuery` by brute force —
cartesian product, per-row predicate checks, dictionary grouping — with
no staging, no algorithm selection and no code generation.  Slow and
obviously correct: every engine in the repository is tested against it.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PlanError
from repro.plan.expressions import make_conjunction, make_evaluator
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundExpr,
    BoundQuery,
)


def evaluate(query: BoundQuery) -> list[tuple]:
    """Evaluate the bound query, returning output rows in final order."""
    layout, rows = _joined_rows(query)
    if query.is_grouped:
        out_rows = _aggregate(query, layout, rows)
    else:
        evaluators = [
            make_evaluator(output.expr, layout) for output in query.select
        ]
        out_rows = [
            tuple(evaluate_one(row) for evaluate_one in evaluators)
            for row in rows
        ]
    out_rows = _order_and_limit(query, out_rows)
    return out_rows


def _joined_rows(query: BoundQuery) -> tuple[ColumnLayout, list[tuple]]:
    """Filter each table, then fold tables in with dictionary equi-joins.

    Still brute force in spirit (no staging, no algorithm choice), but a
    blind cartesian product would make multi-table workloads such as
    TPC-H untestable; a dict of key → rows keeps the reference usable
    without becoming a query optimizer.
    """
    layouts: dict[str, ColumnLayout] = {}
    filtered: dict[str, list[tuple]] = {}
    for bound in query.tables:
        table_layout = ColumnLayout(
            ColumnSlot(bound.binding, c.name, c.dtype)
            for c in bound.table.schema
        )
        layouts[bound.binding] = table_layout
        predicate = make_conjunction(
            query.filters.get(bound.binding, ()), table_layout
        )
        filtered[bound.binding] = [
            row for row in bound.table.scan_rows() if predicate(row)
        ]

    first = query.tables[0].binding
    joined_bindings = [first]
    layout = layouts[first]
    rows = filtered[first]
    remaining = [t.binding for t in query.tables[1:]]
    pending_joins = list(query.joins)

    while remaining:
        predicate, binding = _next_joinable(pending_joins, joined_bindings, remaining)
        if predicate is None:
            binding = remaining[0]
        next_layout = layout.concat(layouts[binding])
        if predicate is None:
            rows = [
                prefix + row
                for prefix in rows
                for row in filtered[binding]
            ]
        else:
            own = predicate.column_for(binding)
            other = (
                predicate.right
                if predicate.left.binding == binding
                else predicate.left
            )
            own_pos = layouts[binding].position(own)
            other_pos = layout.position(other)
            index: dict = {}
            for row in filtered[binding]:
                index.setdefault(row[own_pos], []).append(row)
            rows = [
                prefix + row
                for prefix in rows
                for row in index.get(prefix[other_pos], ())
            ]
            pending_joins.remove(predicate)
        layout = next_layout
        joined_bindings.append(binding)
        remaining.remove(binding)

    if pending_joins:
        residual = make_conjunction(
            [_as_comparison(p) for p in pending_joins], layout
        )
        rows = [row for row in rows if residual(row)]
    return layout, rows


def _next_joinable(pending, joined_bindings, remaining):
    """First pending predicate connecting a joined table to a new one."""
    joined = set(joined_bindings)
    for predicate in pending:
        left_b, right_b = predicate.bindings()
        if left_b in joined and right_b in remaining:
            return predicate, right_b
        if right_b in joined and left_b in remaining:
            return predicate, left_b
    return None, None


def _as_comparison(predicate):
    from repro.sql.bound import BoundComparison

    return BoundComparison("=", predicate.left, predicate.right)


class _AggState:
    """Accumulator for one aggregate in one group."""

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value
        elif self.func == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count if self.count else None
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        raise PlanError(f"unknown aggregate {self.func!r}")


def _find_aggregate(expr: BoundExpr) -> BoundAggregate:
    if isinstance(expr, BoundAggregate):
        return expr
    if isinstance(expr, BoundArithmetic):
        for side in (expr.left, expr.right):
            try:
                return _find_aggregate(side)
            except PlanError:
                continue
    raise PlanError("no aggregate in expression")


def _aggregate(
    query: BoundQuery, layout: ColumnLayout, rows: list[tuple]
) -> list[tuple]:
    group_evaluators = [
        make_evaluator(column, layout) for column in query.group_by
    ]
    agg_outputs = [o for o in query.select if o.kind == "aggregate"]
    agg_exprs = [_find_aggregate(o.expr) for o in agg_outputs]
    arg_evaluators = [
        make_evaluator(a.argument, layout) if a.argument is not None else None
        for a in agg_exprs
    ]

    groups: dict[tuple, list[_AggState]] = {}
    for row in rows:
        key = tuple(evaluate_one(row) for evaluate_one in group_evaluators)
        states = groups.get(key)
        if states is None:
            states = [_AggState(a.func) for a in agg_exprs]
            groups[key] = states
        for state, arg in zip(states, arg_evaluators):
            state.update(arg(row) if arg is not None else 1)

    if not groups and not query.group_by:
        groups[()] = [_AggState(a.func) for a in agg_exprs]

    group_layout = ColumnLayout(
        ColumnSlot(c.binding, c.column, c.dtype) for c in query.group_by
    ) if query.group_by else None

    out: list[tuple] = []
    for key, states in groups.items():
        agg_values = iter(states)
        row_out: list[Any] = []
        for output in query.select:
            if output.kind == "aggregate":
                row_out.append(next(agg_values).result())
            else:
                evaluator = make_evaluator(output.expr, group_layout)
                row_out.append(evaluator(key))
        out.append(tuple(row_out))
    return out


def _order_and_limit(query: BoundQuery, rows: list[tuple]) -> list[tuple]:
    if query.order_by:
        for position, ascending in reversed(query.order_by):
            rows.sort(key=lambda row: row[position], reverse=not ascending)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
