"""Interactive SQL shell over the holistic engine.

Run with ``python -m repro``.  Meta-commands:

* ``.help`` — list commands
* ``.tables`` — list catalogued tables with row counts
* ``.engine <kind>`` — switch engine (hique, hique-o0, volcano,
  volcano-generic, systemx, vectorized)
* ``.explain <sql>`` — show the physical plan
* ``.source <sql>`` — show the generated Python module
* ``.tpch [sf]`` — load a TPC-H instance (default scale factor 0.002)
* ``.timing on|off`` — toggle per-query timing
* ``.quit`` — exit
"""

from __future__ import annotations

import sys
import time

from repro.api import Database, ENGINE_KINDS
from repro.errors import ReproError

_PROMPT = "hique> "


class Shell:
    """A minimal REPL; one instance per session."""

    def __init__(self, stdout=None):
        self.db = Database()
        self.engine_kind = "hique"
        self.timing = True
        self.stdout = stdout if stdout is not None else sys.stdout

    # -- output ------------------------------------------------------------------
    def write(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def write_rows(self, names: list[str], rows: list[tuple]) -> None:
        if not rows:
            self.write("(no rows)")
            return
        widths = [len(n) for n in names]
        rendered = [
            [_format_cell(v) for v in row] for row in rows[:50]
        ]
        for row in rendered:
            for i, cell in enumerate(row):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
        self.write(
            "  ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        )
        self.write("  ".join("-" * w for w in widths))
        for row in rendered:
            self.write(
                "  ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        if len(rows) > 50:
            self.write(f"... {len(rows) - 50} more rows")
        self.write(f"({len(rows)} rows)")

    # -- command dispatch -----------------------------------------------------------
    def handle(self, line: str) -> bool:
        """Process one input line; returns False to exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("."):
            return self._meta(line)
        self._run_sql(line)
        return True

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self.write(__doc__ or "")
        elif command == ".tables":
            for table in self.db.catalog.tables():
                self.write(
                    f"{table.name:20s} {table.num_rows:>10,} rows  "
                    f"{table.num_pages:>6,} pages"
                )
        elif command == ".engine":
            if argument not in ENGINE_KINDS:
                self.write(f"engines: {', '.join(ENGINE_KINDS)}")
            else:
                self.engine_kind = argument
                self.write(f"engine set to {argument}")
        elif command == ".explain":
            try:
                self.write(self.db.explain(argument))
            except ReproError as exc:
                self.write(f"error: {exc}")
        elif command == ".source":
            try:
                self.write(self.db.generated_source(argument))
            except ReproError as exc:
                self.write(f"error: {exc}")
        elif command == ".tpch":
            scale = float(argument) if argument else 0.002
            from repro.bench.tpch import generate_tpch

            started = time.perf_counter()
            generate_tpch(self.db.catalog, scale_factor=scale)
            elapsed = time.perf_counter() - started
            rows = self.db.table("lineitem").num_rows
            self.write(
                f"TPC-H @ SF {scale} loaded in {elapsed:.2f}s "
                f"(lineitem: {rows:,} rows)"
            )
        elif command == ".timing":
            self.timing = argument != "off"
            self.write(f"timing {'on' if self.timing else 'off'}")
        else:
            self.write(f"unknown command {command}; try .help")
        return True

    def _run_sql(self, sql: str) -> None:
        engine = self.db.engine(self.engine_kind)
        try:
            started = time.perf_counter()
            rows = engine.execute(sql)
            elapsed = time.perf_counter() - started
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        names = self._output_names(sql)
        self.write_rows(names, rows)
        if self.timing:
            self.write(
                f"[{self.engine_kind}] {elapsed * 1000:.2f} ms"
            )

    def _output_names(self, sql: str) -> list[str]:
        try:
            hique = self.db.engine("hique")
            return hique.prepare(sql).output_names
        except ReproError:
            return []


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def main(argv: list[str] | None = None) -> int:
    """Entry point: optional args are SQL files to execute first."""
    shell = Shell()
    print("HIQUE reproduction shell — .help for commands, .quit to exit")
    for path in (argv or []):
        with open(path, encoding="utf-8") as handle:
            for statement in handle.read().split(";"):
                if statement.strip():
                    shell.handle(statement)
    try:
        while True:
            try:
                line = input(_PROMPT)
            except EOFError:
                break
            if not shell.handle(line):
                break
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
