"""Interactive SQL shell over the holistic engine.

Run with ``python -m repro`` (or the ``repro`` console script).  Plain
SQL goes through the query service, so repeated statement shapes reuse
cached compiled plans; statements may use ``?`` placeholders when
executed through ``.prepare`` / ``.exec``.  Meta-commands:

* ``.help`` — list commands
* ``.tables`` — list catalogued tables with row counts
* ``.engine <kind>`` — switch engine (hique, hique-o0, volcano,
  volcano-generic, systemx, vectorized)
* ``.explain <sql>`` — show the physical plan; ``.explain analyze
  <sql>`` (or plain ``EXPLAIN ANALYZE <sql>``) executes with tracing
  forced on and annotates each operator with measured time, rows,
  morsel tasks, queue wait and worker pids
* ``.source <sql>`` — show the generated Python module
* ``.prepare <sql>`` — prepare a statement (literals are parameterized
  away; ``?`` placeholders allowed) and report preparation timings
* ``.exec [v1, v2, ...]`` — run the last prepared statement with the
  given parameter values (int, float or 'string')
* ``.cache [clear]`` — show (or reset) plan-cache and service stats;
  each entry lists the ``table@version`` dependencies that keep it
  alive (DML on a table drops only the entries depending on it)
* ``.versions`` — per-table mutation epochs (bumped by every INSERT /
  UPDATE / DELETE / load; version-keyed caches use them for coherence)
* ``.workers <n>`` — set the parallel worker count
* ``.executor [thread|process]`` — pick the intra-query task backend:
  ``thread`` overlaps latency-bound page waits in-process, ``process``
  ships CPU-bound O2 tasks to a pool of worker processes that
  re-import the generated module (O0 plans fall back to threads); with
  no argument, show the current backend
* ``.placement [thread|process|auto]`` — pick the per-batch placement
  policy: ``thread``/``process`` force every batch onto one backend,
  ``auto`` routes each node's batches through the adaptive cost model
  (CPU-bound joins/aggregates ship to processes while latency-bound
  scans stay on threads, mixed inside one query; rows stay
  byte-identical); with no argument, show the current policy
* ``.parallel [on|off]`` — toggle morsel-driven parallel execution; with
  no argument, show the configuration and the last execution's
  per-phase (stage/join/aggregate/final) breakdown
* ``.pipeline [on|off]`` — toggle dependency-driven (pipelined)
  scheduling: operators launch as soon as their inputs complete
  instead of at phase barriers, so independent scans and a CPU-bound
  join overlap (rows stay byte-identical; the timing line then shows
  per-phase overlap); with no argument, show the current mode
* ``.tpch [sf]`` — load a TPC-H instance (default scale factor 0.002)
* ``.timing on|off`` — toggle per-query timing
* ``.trace [on|off|save <path>]`` — toggle span tracing for every
  query (``REPRO_TRACE=1`` turns it on at startup); ``save`` writes
  the last query's span tree as Chrome ``trace_event`` JSON, loadable
  in Perfetto or chrome://tracing; with no argument, show the state
  and a span summary of the last trace
* ``.metrics`` — dump all counters, gauges and latency histograms in
  Prometheus text format
* ``.insights [n|reset]`` — workload insights: the top-n statement
  digests (calls, errors, watchdog timeouts, mean/p95 latency, rows,
  plan-cache hit rate, backend), the slow-query log summary and the
  cross-query operator profile folded from recorded traces; ``reset``
  clears all three
* ``.slow [n|clear]`` — the n slowest queries over the
  ``REPRO_SLOW_MS`` threshold (default 100 ms), with span counts when
  tracing captured their trees; ``clear`` empties the log
* ``.serve [[host:]port | stop]`` — serve this database over TCP
  (newline-delimited JSON, see ``repro.server``) on a background
  thread: per-connection prepared statements, typed ``over_capacity``
  backpressure, graceful drain on ``stop``; with no argument, show
  the address and connection/query counters
* ``.quit`` — exit
"""

from __future__ import annotations

import sys
import time

from repro.api import Database, ENGINE_KINDS
from repro.errors import ReproError
from repro.service import PreparedStatement

_PROMPT = "hique> "


class Shell:
    """A minimal REPL; one instance per session."""

    def __init__(self, stdout=None):
        self.db = Database()
        self.engine_kind = "hique"
        self.timing = True
        self.stdout = stdout if stdout is not None else sys.stdout
        self.last_statement: PreparedStatement | None = None
        self.server_handle = None

    # -- output ------------------------------------------------------------------
    def write(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def write_rows(self, names: list[str], rows: list[tuple]) -> None:
        if not rows:
            self.write("(no rows)")
            return
        widths = [len(n) for n in names]
        rendered = [
            [_format_cell(v) for v in row] for row in rows[:50]
        ]
        for row in rendered:
            for i, cell in enumerate(row):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
        self.write(
            "  ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        )
        self.write("  ".join("-" * w for w in widths))
        for row in rendered:
            self.write(
                "  ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        if len(rows) > 50:
            self.write(f"... {len(rows) - 50} more rows")
        self.write(f"({len(rows)} rows)")

    # -- command dispatch -----------------------------------------------------------
    def handle(self, line: str) -> bool:
        """Process one input line; returns False to exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("."):
            return self._meta(line)
        self._run_sql(line)
        return True

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self.write(__doc__ or "")
        elif command == ".tables":
            for table in self.db.catalog.tables():
                self.write(
                    f"{table.name:20s} {table.num_rows:>10,} rows  "
                    f"{table.num_pages:>6,} pages"
                )
        elif command == ".engine":
            if argument not in ENGINE_KINDS:
                self.write(f"engines: {', '.join(ENGINE_KINDS)}")
            else:
                self.engine_kind = argument
                self.write(f"engine set to {argument}")
        elif command == ".explain":
            try:
                first, _, rest = argument.partition(" ")
                if first.lower() == "analyze" and rest.strip():
                    self.write(
                        self.db.explain_analyze(
                            rest.strip(), engine=self.engine_kind
                        )
                    )
                else:
                    self.write(self.db.explain(argument))
            except ReproError as exc:
                self.write(f"error: {exc}")
        elif command == ".source":
            try:
                self.write(self.db.generated_source(argument))
            except ReproError as exc:
                self.write(f"error: {exc}")
        elif command == ".prepare":
            self._prepare(argument)
        elif command == ".exec":
            self._exec(argument)
        elif command == ".cache":
            self._cache(argument)
        elif command == ".versions":
            versions = self.db.catalog.versions()
            if not versions:
                self.write("(no tables)")
            for name in sorted(versions):
                self.write(f"{name:20s} version {versions[name]}")
        elif command == ".serve":
            self._serve(argument)
        elif command == ".workers":
            try:
                config = self.db.set_parallel(workers=int(argument))
            except (ValueError, ReproError):
                self.write("usage: .workers <positive integer>")
            else:
                self.write(
                    f"morsel workers set to {config.workers} "
                    f"(parallel {'on' if config.enabled else 'off'})"
                )
        elif command == ".executor":
            if argument in ("thread", "process"):
                config = self.db.set_parallel(executor=argument)
                self.write(f"task backend set to {config.executor}")
            elif argument == "":
                self.write(
                    f"task backend: {self.db.parallel_config.executor} "
                    f"(.executor thread|process to switch)"
                )
            else:
                self.write("usage: .executor [thread|process]")
        elif command == ".placement":
            if argument in ("thread", "process", "auto"):
                config = self.db.set_parallel(placement=argument)
                self.write(
                    f"batch placement set to {config.placement}"
                    + (
                        " (adaptive cost-model routing)"
                        if config.placement == "auto"
                        else ""
                    )
                )
            elif argument == "":
                config = self.db.parallel_config
                policy = config.placement or (
                    f"follows executor ({config.executor})"
                )
                self.write(
                    f"batch placement: {policy} "
                    f"(.placement thread|process|auto to switch)"
                )
            else:
                self.write("usage: .placement [thread|process|auto]")
        elif command == ".parallel":
            if argument in ("on", "off"):
                config = self.db.set_parallel(enabled=argument == "on")
                self.write(
                    f"parallel execution {'on' if config.enabled else 'off'} "
                    f"({config.workers} workers, "
                    f"{config.morsel_pages} pages/morsel, "
                    f"{config.executor} backend)"
                )
            elif argument == "":
                config = self.db.parallel_config
                self.write(
                    f"parallel execution "
                    f"{'on' if config.enabled else 'off'} "
                    f"({config.workers} workers, {config.morsel_pages} "
                    f"pages/morsel, {config.executor} backend, "
                    f"{'pipelined' if config.pipeline else 'barrier'} "
                    f"scheduling, min_pages {config.min_pages}, "
                    f"min_rows {config.min_rows})"
                )
                stats = self.db.last_exec_stats(self.engine_kind)
                if stats is not None:
                    self.write(f"last execution: {stats.describe()}")
                    for note in stats.notes:
                        self.write(f"  serial: {note}")
            else:
                self.write("usage: .parallel [on|off]")
        elif command == ".pipeline":
            if argument in ("on", "off"):
                config = self.db.set_parallel(pipeline=argument == "on")
                self.write(
                    f"pipelined scheduling "
                    f"{'on' if config.pipeline else 'off'} "
                    f"({config.workers} workers, {config.executor} backend)"
                )
            elif argument == "":
                config = self.db.parallel_config
                self.write(
                    f"scheduling: "
                    f"{'pipelined' if config.pipeline else 'barrier'} "
                    f"(.pipeline on|off to switch)"
                )
            else:
                self.write("usage: .pipeline [on|off]")
        elif command == ".tpch":
            scale = float(argument) if argument else 0.002
            from repro.bench.tpch import generate_tpch

            started = time.perf_counter()
            generate_tpch(self.db.catalog, scale_factor=scale)
            elapsed = time.perf_counter() - started
            rows = self.db.table("lineitem").num_rows
            self.write(
                f"TPC-H @ SF {scale} loaded in {elapsed:.2f}s "
                f"(lineitem: {rows:,} rows)"
            )
        elif command == ".timing":
            self.timing = argument != "off"
            self.write(f"timing {'on' if self.timing else 'off'}")
        elif command == ".trace":
            self._trace(argument)
        elif command == ".metrics":
            self.write(self.db.metrics_text())
        elif command == ".insights":
            self._insights(argument)
        elif command == ".slow":
            self._slow(argument)
        else:
            self.write(f"unknown command {command}; try .help")
        return True

    # -- prepared statements ---------------------------------------------------------
    def _prepare(self, sql: str) -> None:
        if not sql:
            self.write("usage: .prepare <sql>")
            return
        try:
            started = time.perf_counter()
            statement = self.db.prepare(sql, engine=self.engine_kind)
            elapsed = time.perf_counter() - started
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self.last_statement = statement
        self.write(f"prepared: {statement.key}")
        self.write(
            f"{statement.num_params} parameter(s); prepared in "
            f"{elapsed * 1000:.2f} ms — run with .exec v1, v2, ..."
        )

    def _exec(self, argument: str) -> None:
        if self.last_statement is None:
            self.write("no prepared statement; use .prepare <sql> first")
            return
        try:
            params = _parse_params(argument) if argument else None
            started = time.perf_counter()
            rows = self.last_statement.execute(params)
            elapsed = time.perf_counter() - started
        except (ReproError, ValueError) as exc:
            self.write(f"error: {exc}")
            return
        self.write_rows(self._statement_names(self.last_statement), rows)
        if self.timing:
            self.write(f"[{self.last_statement.engine_kind}] "
                       f"{elapsed * 1000:.2f} ms"
                       f"{self._exec_suffix(self.last_statement.engine_kind)}")

    def _cache(self, argument: str) -> None:
        service = self.db.service
        if argument == "clear":
            service.cache.invalidate()
            self.write("plan cache cleared")
            return
        stats = service.stats()
        cache = stats.cache
        self.write(
            f"plan cache: {cache.size}/{cache.capacity} entries, "
            f"{cache.hits} hits, {cache.misses} misses, "
            f"{cache.evictions} evictions, {cache.invalidations} "
            f"invalidations ({cache.hit_rate * 100:.0f}% hit rate)"
        )
        self.write(f"admission policy: {cache.policy}")
        self.write(
            f"preparation saved: {cache.seconds_saved * 1000:.2f} ms; "
            f"service: {stats.queries} queries, {stats.text_hits} "
            f"text hits, {stats.completed} pooled, {stats.rejected} "
            f"rejected"
        )
        parallel_runs, serial_runs = self.db.parallel_counters()
        self.write(
            f"engine executions: {parallel_runs} parallel, "
            f"{serial_runs} serial ({stats.executor} placement)"
        )
        inter = self.db.intermediates.stats()
        self.write(
            f"intermediate cache: {inter.entries} entries, "
            f"{inter.bytes:,} / {inter.capacity_bytes:,} B, "
            f"{inter.hits} hits, {inter.misses} misses, "
            f"{inter.evictions} evictions "
            f"({inter.hit_rate * 100:.0f}% hit rate)"
        )
        for entry in reversed(service.cache.entries()):
            kind, key, _signature = entry.key
            deps = ", ".join(
                f"{table}@{version}" for table, version in entry.deps
            )
            self.write(
                f"  [{entry.hits:>4} hits, {entry.seconds_saved * 1000:8.2f}"
                f" ms saved, {entry.size_bytes:>7} B] ({kind}) {key}"
                + (f"  deps: {deps}" if deps else "")
            )

    def _serve(self, argument: str) -> None:
        if argument == "stop":
            if self.server_handle is None:
                self.write("no server running")
                return
            self.server_handle.stop()
            stats = self.server_handle.stats()
            self.server_handle = None
            self.write(
                f"server drained and stopped "
                f"({stats.queries_ok} queries served, "
                f"{stats.connections_total} connections)"
            )
            return
        if not argument:
            if self.server_handle is None:
                self.write(
                    "no server running (.serve [host:]port to start)"
                )
            else:
                host, port = self.server_handle.address
                stats = self.server_handle.stats()
                self.write(
                    f"serving on {host}:{port} — "
                    f"{stats.connections_active} active / "
                    f"{stats.connections_total} total connections, "
                    f"{stats.queries_ok} ok, {stats.errors} errors "
                    f"({stats.over_capacity} over capacity, "
                    f"{stats.timeouts} timeouts)"
                )
            return
        if self.server_handle is not None:
            self.write(
                "a server is already running (.serve stop first)"
            )
            return
        host, _, port_text = argument.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            self.write("usage: .serve [[host:]port | stop]")
            return
        try:
            self.server_handle = self.db.serve(host=host, port=port)
        except OSError as exc:
            self.write(f"error: {exc}")
            return
        bound_host, bound_port = self.server_handle.address
        self.write(
            f"serving on {bound_host}:{bound_port} "
            f"(newline-delimited JSON; .serve stop to drain)"
        )

    def close(self) -> None:
        """Release the shell's resources (server first, then the db)."""
        if self.server_handle is not None:
            self.server_handle.stop()
            self.server_handle = None
        self.db.close()

    def _trace(self, argument: str) -> None:
        if argument == "on":
            self.db.set_trace(True)
            self.write("tracing on")
        elif argument == "off":
            self.db.set_trace(False)
            self.write("tracing off")
        elif argument.startswith("save"):
            trace = self.db.last_trace()
            if trace is None:
                self.write("no trace recorded; .trace on and run a query")
                return
            path = argument[len("save"):].strip() or "trace.json"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(trace.to_chrome_trace())
            self.write(
                f"wrote {path} (open in Perfetto or chrome://tracing)"
            )
        elif argument == "":
            state = "on" if self.db.trace_enabled else "off"
            self.write(f"tracing {state}")
            trace = self.db.last_trace()
            if trace is not None:
                spans = sum(1 for _ in trace.root.walk())
                self.write(
                    f"last trace: {trace.root.name}, {spans} spans, "
                    f"{trace.root.duration * 1000:.2f} ms "
                    f"(.trace save <path> to export)"
                )
        else:
            self.write("usage: .trace [on|off|save <path>]")

    def _insights(self, argument: str) -> None:
        if argument == "reset":
            self.db.insights().reset()
            self.write("workload insights reset")
            return
        top = 10
        if argument:
            try:
                top = max(1, int(argument))
            except ValueError:
                self.write("usage: .insights [n|reset]")
                return
        self.write(self.db.insights_text(top=top))

    def _slow(self, argument: str) -> None:
        log = self.db.insights().slow
        if argument == "clear":
            log.clear()
            self.write("slow-query log cleared")
            return
        limit = 10
        if argument:
            try:
                limit = max(1, int(argument))
            except ValueError:
                self.write("usage: .slow [n|clear]")
                return
        self.write(log.render_text(limit=limit))

    def _run_sql(self, sql: str) -> None:
        head = sql.split(None, 2)
        if len(head) == 3 and [w.upper() for w in head[:2]] == [
            "EXPLAIN",
            "ANALYZE",
        ]:
            try:
                self.write(
                    self.db.explain_analyze(head[2], engine=self.engine_kind)
                )
            except ReproError as exc:
                self.write(f"error: {exc}")
            return
        try:
            started = time.perf_counter()
            statement = self.db.prepare(sql, engine=self.engine_kind)
            rows = statement.execute()
            elapsed = time.perf_counter() - started
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self.write_rows(self._statement_names(statement), rows)
        if self.timing:
            self.write(
                f"[{statement.engine_kind}] {elapsed * 1000:.2f} ms"
                f"{self._exec_suffix(statement.engine_kind)}"
            )

    def _exec_suffix(self, engine_kind: str) -> str:
        """Timing-line annotation: how that engine actually executed."""
        stats = self.db.last_exec_stats(engine_kind)
        if stats is None or not stats.parallel:
            return ""
        return f" ({stats.describe()})"

    def _statement_names(self, statement: PreparedStatement) -> list[str]:
        try:
            return statement.output_names
        except ReproError:
            return []


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _parse_params(text: str) -> tuple:
    """Parse ``.exec`` arguments: comma-separated ints, floats, 'strings'."""
    values = []
    for part in _split_params(text):
        part = part.strip()
        if not part:
            raise ValueError("empty parameter value")
        if part.startswith("'") and part.endswith("'") and len(part) >= 2:
            values.append(part[1:-1].replace("''", "'"))
            continue
        try:
            values.append(int(part))
        except ValueError:
            try:
                values.append(float(part))
            except ValueError:
                raise ValueError(
                    f"cannot parse parameter {part!r} (use an int, a "
                    f"float or a 'quoted string')"
                ) from None
    return tuple(values)


def _split_params(text: str) -> list[str]:
    """Split on commas that are not inside single-quoted strings."""
    parts: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == "," and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def main(argv: list[str] | None = None) -> int:
    """Entry point: optional args are SQL files to execute first."""
    shell = Shell()
    print("HIQUE reproduction shell — .help for commands, .quit to exit")
    for path in (argv or []):
        with open(path, encoding="utf-8") as handle:
            for statement in handle.read().split(";"):
                if statement.strip():
                    shell.handle(statement)
    try:
        while True:
            try:
                line = input(_PROMPT)
            except EOFError:
                break
            if not shell.handle(line):
                break
    except KeyboardInterrupt:
        pass
    finally:
        shell.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
