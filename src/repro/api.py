"""High-level convenience API: a `Database` wrapping catalog + engines.

This is the entry point the examples use::

    from repro import Database, Column, INT, DOUBLE

    db = Database()
    db.create_table("t", [Column("a", INT), Column("b", DOUBLE)])
    db.load_rows("t", [(1, 2.0), (2, 4.0)])
    db.analyze()
    rows = db.execute("SELECT a, sum(b) AS s FROM t GROUP BY a")

The default engine is HIQUE (holistic code generation); the comparison
engines are available through :meth:`Database.engine`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.emitter import OPT_O2
from repro.core.engine import HiqueEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.errors import ReproError
from repro.plan.optimizer import PlannerConfig
from repro.service import PreparedStatement, QueryService
from repro.storage.buffer import BufferManager
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

#: Engine configurations selectable through :meth:`Database.engine`.
ENGINE_KINDS = (
    "hique",  # holistic code generation (the paper's system)
    "hique-o0",  # holistic generation without inlining optimizations
    "volcano",  # optimized iterators
    "volcano-generic",  # generic iterators (PostgreSQL analogue)
    "systemx",  # optimized iterators + buffering (System X analogue)
    "vectorized",  # DSM column engine (MonetDB analogue)
)


class Database:
    """A catalogue of tables plus lazily constructed engines."""

    def __init__(
        self,
        buffer_capacity: int = 4096,
        planner_config: PlannerConfig | None = None,
        cache_capacity: int = 64,
        max_workers: int = 4,
        catalog: Catalog | None = None,
    ):
        if catalog is not None:
            self.buffer = catalog.buffer
            self.catalog = catalog
        else:
            self.buffer = BufferManager(buffer_capacity)
            self.catalog = Catalog(self.buffer)
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.cache_capacity = cache_capacity
        self.max_workers = max_workers
        self._engines: dict[str, Any] = {}
        self._service: QueryService | None = None
        # Engine-internal caches (compiled text cache, DSM copies) go
        # stale on DDL and statistics changes, same as service plans.
        self.catalog.add_listener(self._on_catalog_change)

    # -- schema & data ---------------------------------------------------------------
    def create_table(
        self, name: str, columns: Sequence[Column] | Schema
    ) -> Table:
        schema = columns if isinstance(columns, Schema) else Schema(columns)
        return self.catalog.create_table(name, schema)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.table(name).load_rows(rows)

    def analyze(self, name: str | None = None) -> None:
        self.catalog.analyze(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- engines -----------------------------------------------------------------------
    def engine(self, kind: str = "hique"):
        """An engine instance by configuration name (cached)."""
        if kind not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {kind!r}; choose from {ENGINE_KINDS}"
            )
        if kind not in self._engines:
            self._engines[kind] = self._build_engine(kind)
        return self._engines[kind]

    def _build_engine(self, kind: str):
        config = self.planner_config
        if kind == "hique":
            return HiqueEngine(self.catalog, planner_config=config)
        if kind == "hique-o0":
            return HiqueEngine(
                self.catalog, planner_config=config, opt_level="O0"
            )
        if kind == "volcano":
            return VolcanoEngine(self.catalog, planner_config=config)
        if kind == "volcano-generic":
            return VolcanoEngine(
                self.catalog, generic=True, planner_config=config
            )
        if kind == "systemx":
            return VolcanoEngine(
                self.catalog, buffered=True, planner_config=config
            )
        return VectorizedEngine(self.catalog, planner_config=config)

    def _on_catalog_change(self, table: str | None) -> None:
        for kind in ("hique", "hique-o0"):
            cached = self._engines.get(kind)
            if cached is not None:
                cached.clear_cache()
        vectorized = self._engines.get("vectorized")
        if vectorized is not None:
            vectorized.invalidate(table)

    # -- the query service --------------------------------------------------------------
    @property
    def service(self) -> QueryService:
        """The prepared-statement/plan-cache front-end (lazily built)."""
        if self._service is None:
            self._service = QueryService(
                self,
                cache_capacity=self.cache_capacity,
                max_workers=self.max_workers,
            )
        return self._service

    def prepare(
        self, sql: str, engine: str = "hique"
    ) -> PreparedStatement:
        """Prepare one statement shape for repeated execution."""
        if engine not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
            )
        return self.service.prepare(sql, engine=engine)

    # -- querying -----------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        engine: str = "hique",
        params: Sequence[Any] | None = None,
    ) -> list[tuple]:
        """Run one query through the chosen engine.

        Execution goes through the query service, so repeated statement
        shapes — identical text, or text differing only in WHERE-clause
        constants — reuse one cached compiled plan.  ``params`` fills
        explicit ``?`` placeholders.
        """
        if engine not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
            )
        return self.service.execute(sql, params=params, engine=engine)

    def explain(self, sql: str) -> str:
        """The physical plan the shared optimizer produces."""
        hique: HiqueEngine = self.engine("hique")
        return hique.explain(sql)

    def generated_source(
        self, sql: str, opt_level: str = OPT_O2
    ) -> str:
        """The HIQUE-generated Python source for a query."""
        hique: HiqueEngine = self.engine("hique")
        return hique.generate_source(sql, opt_level=opt_level)

    # -- lifecycle -----------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the service and release engine resources."""
        self.catalog.remove_listener(self._on_catalog_change)
        if self._service is not None:
            self._service.close()
            self._service = None
        for engine in self._engines.values():
            close = getattr(engine, "close", None)
            if callable(close):
                close()
        self._engines.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
