"""High-level convenience API: a `Database` wrapping catalog + engines.

This is the entry point the examples use::

    from repro import Database, Column, INT, DOUBLE

    db = Database()
    db.create_table("t", [Column("a", INT), Column("b", DOUBLE)])
    db.load_rows("t", [(1, 2.0), (2, 4.0)])
    db.analyze()
    rows = db.execute("SELECT a, sum(b) AS s FROM t GROUP BY a")

The default engine is HIQUE (holistic code generation); the comparison
engines are available through :meth:`Database.engine`.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterable, Sequence

from repro.core.emitter import OPT_O2
from repro.core.engine import HiqueEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.errors import ReproError
from repro.obs import (
    Observability,
    Trace,
    Tracer,
    WorkloadInsights,
    default_trace_enabled,
    storage_registry,
)
from repro.obs.explain import render_explain_analyze
from repro.parallel.executor import ParallelExecutor
from repro.parallel.intermediates import (
    IntermediateCache,
    IntermediateCacheStats,
)
from repro.parallel.stats import (
    EXECUTOR_KINDS,
    PLACEMENT_KINDS,
    ExecutionStats,
    ParallelConfig,
    default_executor,
)
from repro.plan.optimizer import PlannerConfig
from repro.service import PreparedStatement, QueryService
from repro.storage.buffer import BufferManager
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

#: Engine configurations selectable through :meth:`Database.engine`.
ENGINE_KINDS = (
    "hique",  # holistic code generation (the paper's system)
    "hique-o0",  # holistic generation without inlining optimizations
    "volcano",  # optimized iterators
    "volcano-generic",  # generic iterators (PostgreSQL analogue)
    "systemx",  # optimized iterators + buffering (System X analogue)
    "vectorized",  # DSM column engine (MonetDB analogue)
)

#: ``EXPLAIN ANALYZE <sql>`` — executed through :meth:`Database.execute`.
_EXPLAIN_ANALYZE = re.compile(r"^\s*EXPLAIN\s+ANALYZE\s+(.*)$", re.I | re.S)


class Database:
    """A catalogue of tables plus lazily constructed engines.

    Two parallelism knobs with distinct scopes: ``max_workers`` bounds
    *inter*-query concurrency (the session pool), ``workers`` bounds
    *intra*-query concurrency (one scan's morsel pool).
    """

    def __init__(
        self,
        buffer_capacity: int = 4096,
        planner_config: PlannerConfig | None = None,
        cache_capacity: int = 64,
        max_workers: int = 4,
        catalog: Catalog | None = None,
        workers: int = 4,
        parallel: bool = True,
        executor: str | None = None,
        placement: str | None = None,
        pipeline: bool | None = None,
        trace: bool | None = None,
        insights: bool = True,
    ):
        """``max_workers`` sizes the *session* pool (concurrent queries);
        ``workers`` sizes the *morsel* pool inside one query's scan, and
        ``parallel=False`` pins every execution to the serial entry
        point.  ``executor`` picks the intra-query task backend —
        ``"thread"`` (in-process pool, best for latency-bound scans) or
        ``"process"`` (process pool re-importing generated modules, best
        for CPU-bound in-memory phases); ``None`` defers to the
        ``REPRO_EXECUTOR`` environment variable, then ``"thread"``.
        ``placement`` picks the per-batch placement policy —
        ``"thread"``/``"process"`` force one backend for every batch,
        ``"auto"`` routes each node's batches through the adaptive
        cost model (mixed thread/process placement inside one query;
        rows stay byte-identical); ``None`` defers to the
        ``REPRO_PLACEMENT`` environment variable, then follows
        ``executor``.  ``pipeline=True`` turns on dependency-driven
        cross-phase
        scheduling (operators launch as their inputs complete instead
        of at phase barriers; rows stay byte-identical); ``None`` defers
        to the ``REPRO_PIPELINE`` environment flag, then off.
        ``trace=True`` records a span tree per query (see
        :meth:`last_trace` and ``EXPLAIN ANALYZE``); ``None`` defers to
        the ``REPRO_TRACE`` environment flag, then off — and the
        disabled path costs one integer check per instrumentation
        point.  ``insights=True`` (the default) keeps per-statement
        workload digests and a slow-query log (``REPRO_SLOW_MS``
        threshold); see :meth:`insights` / :meth:`insights_text` — the
        record path is gated below 3% on warm point queries."""
        if catalog is not None:
            self.buffer = catalog.buffer
            self.catalog = catalog
        else:
            self.buffer = BufferManager(buffer_capacity)
            self.catalog = Catalog(self.buffer)
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.cache_capacity = cache_capacity
        self.max_workers = max_workers
        try:
            if executor is None:
                executor = default_executor()
            knobs: dict[str, Any] = {}
            if placement is not None:
                knobs["placement"] = placement
            if pipeline is not None:
                knobs["pipeline"] = pipeline
            self.parallel_config = ParallelConfig(
                workers=workers, enabled=parallel, executor=executor,
                **knobs,
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from None
        self._engines: dict[str, Any] = {}
        self._engines_lock = threading.Lock()
        self._service: QueryService | None = None
        #: Version-keyed cache of staged scan intermediates, shared by
        #: the code-generating engines' parallel executors.  Keys carry
        #: each table's mutation epoch, so DML coherence is automatic;
        #: the catalogue listener below drops entries eagerly.
        self.intermediates = IntermediateCache()
        #: Per-database metrics registry + tracer: independent databases
        #: never share collectors or span trees.
        self.obs = Observability(
            tracer=Tracer(
                enabled=(
                    trace if trace is not None else default_trace_enabled()
                )
            )
        )
        self.obs.registry.register_collector(self._collect_db_metrics)
        #: Workload insights: per-statement digests, slow-query log and
        #: the cross-query operator profile.  Constructed eagerly (the
        #: service picks it up lazily) so its collector and trace
        #: listener cover the database's whole lifetime.
        self.insights_store = WorkloadInsights(
            obs=self.obs, enabled=insights
        )
        self.insights_store.intermediates_source = self.intermediates.stats
        # Engine-internal caches (compiled text cache, DSM copies) go
        # stale on DDL and statistics changes, same as service plans.
        self.catalog.add_listener(self._on_catalog_change)

    # -- schema & data ---------------------------------------------------------------
    def create_table(
        self, name: str, columns: Sequence[Column] | Schema
    ) -> Table:
        schema = columns if isinstance(columns, Schema) else Schema(columns)
        return self.catalog.create_table(name, schema)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        # Bulk loads are writers: take the catalogue's exclusive gate so
        # no concurrent read query observes a half-loaded table.
        with self.catalog.exclusive():
            count = self.catalog.table(name).load_rows(rows)
            # The table's version moved; tell the fine-grained caches
            # while the write gate is still held.
            self.catalog.notify_dml(name)
            return count

    def analyze(self, name: str | None = None) -> None:
        self.catalog.analyze(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- engines -----------------------------------------------------------------------
    def engine(self, kind: str = "hique"):
        """An engine instance by configuration name (cached)."""
        if kind not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {kind!r}; choose from {ENGINE_KINDS}"
            )
        # Lock-free hit path; the lock keeps two sessions cold-starting
        # the same kind from building (and leaking) duplicate engines.
        engine = self._engines.get(kind)
        if engine is None:
            with self._engines_lock:
                engine = self._engines.get(kind)
                if engine is None:
                    engine = self._build_engine(kind)
                    self._engines[kind] = engine
        return engine

    def _build_engine(self, kind: str):
        config = self.planner_config
        if kind == "hique":
            return self._wire_profile_source(
                HiqueEngine(
                    self.catalog,
                    planner_config=config,
                    parallel=self.parallel_config,
                    obs=self.obs,
                )
            )
        if kind == "hique-o0":
            return self._wire_profile_source(
                HiqueEngine(
                    self.catalog,
                    planner_config=config,
                    opt_level="O0",
                    parallel=self.parallel_config,
                    obs=self.obs,
                )
            )
        if kind == "volcano":
            return VolcanoEngine(
                self.catalog, planner_config=config, obs=self.obs
            )
        if kind == "volcano-generic":
            return VolcanoEngine(
                self.catalog, generic=True, planner_config=config,
                obs=self.obs,
            )
        if kind == "systemx":
            return VolcanoEngine(
                self.catalog, buffered=True, planner_config=config,
                obs=self.obs,
            )
        return VectorizedEngine(
            self.catalog, planner_config=config, obs=self.obs
        )

    def _wire_profile_source(self, engine):
        """Wire an engine's scheduler to the database's shared state.

        Adaptive placement seeds its cost model from observed
        per-operator rates (``.insights`` profile) instead of static
        priors alone, and staged scan outputs land in the shared
        version-keyed intermediate cache.
        """
        if engine.parallel is not None:
            engine.parallel.profile_source = (
                self.insights_store.profile.kind_totals
            )
            engine.parallel.intermediates = self.intermediates
        return engine

    # -- parallelism knobs ---------------------------------------------------------------
    def set_parallel(
        self,
        workers: int | None = None,
        enabled: bool | None = None,
        morsel_pages: int | None = None,
        min_pages: int | None = None,
        min_rows: int | None = None,
        allow_float_reorder: bool | None = None,
        executor: str | None = None,
        placement: str | None = None,
        task_timeout: float | None = None,
        pipeline: bool | None = None,
    ) -> ParallelConfig:
        """Reconfigure morsel-driven parallelism at run time.

        Applies to engines built afterwards *and* retunes the already
        built code-generating engines: their morsel pools are retired
        and rebuilt lazily, while in-flight executions drain on the old
        pool with the configuration they started with.  Switching
        ``executor`` retires the old backend's pools too, so a database
        can hop between the thread and process backends mid-session;
        ``placement`` picks the per-batch policy (``"thread"``,
        ``"process"``, ``"auto"`` for the adaptive chooser, or ``""``
        to follow ``executor``); ``pipeline`` toggles dependency-driven
        cross-phase scheduling.
        """
        if executor is not None and executor not in EXECUTOR_KINDS:
            raise ReproError(
                f"unknown executor {executor!r}; "
                f"choose from {EXECUTOR_KINDS}"
            )
        if placement is not None and placement != "" and (
            placement not in PLACEMENT_KINDS
        ):
            raise ReproError(
                f"unknown placement {placement!r}; "
                f"choose from {PLACEMENT_KINDS} (or '' to follow the "
                f"executor knob)"
            )
        current = self.parallel_config
        self.parallel_config = ParallelConfig(
            workers=workers if workers is not None else current.workers,
            morsel_pages=(
                morsel_pages
                if morsel_pages is not None
                else current.morsel_pages
            ),
            enabled=enabled if enabled is not None else current.enabled,
            executor=(
                executor if executor is not None else current.executor
            ),
            placement=(
                placement if placement is not None else current.placement
            ),
            task_timeout=(
                task_timeout
                if task_timeout is not None
                else current.task_timeout
            ),
            pipeline=(
                pipeline if pipeline is not None else current.pipeline
            ),
            min_pages=(
                min_pages if min_pages is not None else current.min_pages
            ),
            min_rows=(
                min_rows if min_rows is not None else current.min_rows
            ),
            allow_float_reorder=(
                allow_float_reorder
                if allow_float_reorder is not None
                else current.allow_float_reorder
            ),
        )
        for kind in ("hique", "hique-o0"):
            engine = self._engines.get(kind)
            if engine is not None:
                if engine.parallel is not None:
                    engine.parallel.reconfigure(self.parallel_config)
                else:
                    engine.parallel = ParallelExecutor(
                        self.parallel_config, obs=self.obs
                    )
                    self._wire_profile_source(engine)
        return self.parallel_config

    def last_exec_stats(self, engine: str = "hique") -> ExecutionStats | None:
        """How the given engine's most recent execution ran (or None)."""
        built = self._engines.get(engine)
        return getattr(built, "last_exec_stats", None)

    def parallel_counters(self) -> tuple[int, int]:
        """(parallel, serial) execution counts across built engines."""
        parallel_runs = serial_runs = 0
        for built in self._engines.values():
            executor = getattr(built, "parallel", None)
            if executor is not None:
                parallel_runs += executor.parallel_runs
                serial_runs += executor.serial_runs
        return parallel_runs, serial_runs

    # -- observability -------------------------------------------------------------------
    def _collect_db_metrics(self, registry) -> None:
        """Render-time sampler for storage-spine and scheduler gauges."""
        stats = self.buffer.stats
        registry.sample("repro_buffer_capacity_pages", self.buffer.capacity)
        registry.sample("repro_buffer_hits_total", stats.hits)
        registry.sample("repro_buffer_misses_total", stats.misses)
        registry.sample("repro_buffer_evictions_total", stats.evictions)
        parallel_runs, serial_runs = self.parallel_counters()
        registry.sample("repro_parallel_runs_total", parallel_runs)
        registry.sample("repro_serial_runs_total", serial_runs)
        inter = self.intermediates.stats()
        registry.sample(
            "repro_intermediate_cache_capacity_bytes", inter.capacity_bytes
        )
        registry.sample("repro_intermediate_cache_entries", inter.entries)
        registry.sample("repro_intermediate_cache_bytes", inter.bytes)
        registry.sample("repro_intermediate_cache_hits_total", inter.hits)
        registry.sample(
            "repro_intermediate_cache_misses_total", inter.misses
        )
        registry.sample(
            "repro_intermediate_cache_evictions_total", inter.evictions
        )
        registry.sample(
            "repro_intermediate_cache_invalidations_total",
            inter.invalidations,
        )

    def set_trace(self, enabled: bool) -> None:
        """Turn per-query span recording on or off at run time."""
        self.obs.tracer.enabled = enabled

    def insights(self) -> WorkloadInsights:
        """The workload insights: digests, slow log, operator profile."""
        return self.insights_store

    def insights_text(self, top: int = 10) -> str:
        """Top-k digest table + slow-query log + folded profile."""
        return self.insights_store.render_text(top=top)

    def set_insights(self, enabled: bool) -> None:
        """Toggle workload-insights collection at run time."""
        self.insights_store.enabled = enabled

    @property
    def trace_enabled(self) -> bool:
        return self.obs.tracer.enabled

    def last_trace(self) -> Trace | None:
        """The most recently completed query's span tree (or None)."""
        return self.obs.tracer.last_trace()

    def metrics_text(self) -> str:
        """All metrics in Prometheus text exposition format.

        Concatenates this database's registry (queries, plan cache,
        sessions, buffer pool, watchdog) with the process-wide storage
        registry (disk pread latency, shared across databases).
        """
        own = self.obs.registry.render_text()
        storage = storage_registry().render_text()
        if own and storage:
            return own + "\n" + storage
        return own or storage

    def explain_analyze(
        self,
        sql: str,
        engine: str = "hique",
        params: Sequence[Any] | None = None,
    ) -> str:
        """Execute the query with tracing forced on and render the plan
        annotated with measured per-operator times, rows, morsel tasks,
        queue waits, worker pids and buffer traffic."""
        if engine not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
            )
        tracer = self.obs.tracer
        with tracer.ensure_enabled():
            with tracer.span("explain_analyze", "api") as root:
                self.service.execute(sql, params=params, engine=engine)
        trace = root.trace if root is not None else None
        if trace is None:
            raise ReproError("tracing produced no span tree")
        plan = self.service.physical_plan(sql, engine=engine, params=params)
        return render_explain_analyze(plan, trace)

    def _on_catalog_change(
        self, table: str | None, kind: str = "ddl"
    ) -> None:
        if kind == "dml":
            # A mutation moved one table's version: the DSM copy and
            # that table's staged intermediates are stale; compiled
            # code is not (generated scans read live pages), so the
            # engines' text caches survive.
            vectorized = self._engines.get("vectorized")
            if vectorized is not None:
                vectorized.invalidate(table)
            self.intermediates.invalidate_table(table)
            return
        for engine_kind in ("hique", "hique-o0"):
            cached = self._engines.get(engine_kind)
            if cached is not None:
                cached.clear_cache()
        vectorized = self._engines.get("vectorized")
        if vectorized is not None:
            vectorized.invalidate(table)
        # DDL recreating a table restarts its version epoch, which
        # would alias old keys: drop everything.
        self.intermediates.clear()

    # -- the query service --------------------------------------------------------------
    @property
    def service(self) -> QueryService:
        """The prepared-statement/plan-cache front-end (lazily built)."""
        if self._service is None:
            self._service = QueryService(
                self,
                cache_capacity=self.cache_capacity,
                max_workers=self.max_workers,
            )
        return self._service

    def prepare(
        self, sql: str, engine: str = "hique"
    ) -> PreparedStatement:
        """Prepare one statement shape for repeated execution."""
        if engine not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
            )
        return self.service.prepare(sql, engine=engine)

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        query_timeout: float | None = None,
        task_timeout: float | None = None,
    ):
        """Serve this database over TCP on a background thread.

        Newline-delimited JSON protocol (see :mod:`repro.server`),
        backed by the query service's session pool and admission
        control.  Returns a :class:`repro.server.ServerHandle` whose
        ``address`` is the bound (host, port) — pass ``port=0`` for an
        OS-assigned one — and whose ``stop()`` drains in-flight
        queries before shutting down.  ``query_timeout`` bounds each
        query's wall time (typed ``timeout`` response);
        ``task_timeout`` arms the parallel stall watchdog beneath it.
        """
        from repro.server import serve_in_thread

        return serve_in_thread(
            self,
            host=host,
            port=port,
            query_timeout=query_timeout,
            task_timeout=task_timeout,
        )

    # -- querying -----------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        engine: str = "hique",
        params: Sequence[Any] | None = None,
    ) -> list[tuple]:
        """Run one query through the chosen engine.

        Execution goes through the query service, so repeated statement
        shapes — identical text, or text differing only in WHERE-clause
        constants — reuse one cached compiled plan.  ``params`` fills
        explicit ``?`` placeholders.
        """
        if engine not in ENGINE_KINDS:
            raise ReproError(
                f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
            )
        match = _EXPLAIN_ANALYZE.match(sql)
        if match is not None:
            text = self.explain_analyze(
                match.group(1), engine=engine, params=params
            )
            return [(line,) for line in text.splitlines()]
        return self.service.execute(sql, params=params, engine=engine)

    def explain(self, sql: str) -> str:
        """The physical plan the shared optimizer produces."""
        hique: HiqueEngine = self.engine("hique")
        return hique.explain(sql)

    def generated_source(
        self, sql: str, opt_level: str = OPT_O2
    ) -> str:
        """The HIQUE-generated Python source for a query."""
        hique: HiqueEngine = self.engine("hique")
        return hique.generate_source(sql, opt_level=opt_level)

    # -- lifecycle -----------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the service and release engine resources."""
        self.insights_store.close()
        self.obs.registry.unregister_collector(self._collect_db_metrics)
        self.catalog.remove_listener(self._on_catalog_change)
        if self._service is not None:
            self._service.close()
            self._service = None
        for engine in self._engines.values():
            close = getattr(engine, "close", None)
            if callable(close):
                close()
        self._engines.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
