"""Set-associative cache model with LRU replacement.

Caches track, per line, whether the line was brought in by a prefetcher
or by a demand miss.  The hierarchy uses that flag to charge the paper's
sequential (prefetched) or random (demand) miss latencies, following the
paper's methodology: "we assumed sequential access latencies for
prefetched cache lines and random access latencies for all other cache
misses" (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size: int
    line_size: int
    associativity: int

    @property
    def num_sets(self) -> int:
        sets = self.size // (self.line_size * self.associativity)
        if sets <= 0:
            raise ReproError(f"cache {self.name} geometry underflows")
        return sets


@dataclass
class CacheStats:
    """Demand-access statistics for one cache level."""

    hits: int = 0
    misses: int = 0
    prefetched_misses: int = 0  # misses whose line a prefetcher predicted
    prefetch_issued: int = 0
    prefetch_hits: int = 0  # demand hits on lines installed by prefetch

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_efficiency(self) -> float:
        """Prefetched lines over total missed lines (paper's definition).

        A miss "covered" by prefetch is one the prefetcher had predicted
        (the data arrives with sequential latency instead of random).
        """
        if not self.misses:
            return 0.0
        return self.prefetched_misses / self.misses

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.prefetched_misses = self.prefetch_issued = self.prefetch_hits = 0


class Cache:
    """One cache level: set-associative, LRU, with prefetch tagging."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        # Per set: dict line_addr -> prefetched flag; dict order is LRU.
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(self._num_sets)
        ]

    # -- demand path ------------------------------------------------------------
    def access(self, line_addr: int) -> bool:
        """Demand-access one line; returns True on hit.

        On a hit the line becomes most recently used.  Install on miss is
        the hierarchy's job (it knows whether lower levels supplied the
        line), via :meth:`install`.
        """
        way = self._sets[line_addr % self._num_sets]
        if line_addr in way:
            prefetched = way.pop(line_addr)
            way[line_addr] = False  # demand touch clears the prefetch tag
            self.stats.hits += 1
            if prefetched:
                self.stats.prefetch_hits += 1
            return True
        self.stats.misses += 1
        return False

    def install(self, line_addr: int, prefetched: bool = False) -> int | None:
        """Bring a line in; returns the evicted line address, if any."""
        way = self._sets[line_addr % self._num_sets]
        victim = None
        if line_addr in way:
            way.pop(line_addr)
        elif len(way) >= self.config.associativity:
            victim = next(iter(way))
            way.pop(victim)
        way[line_addr] = prefetched
        if prefetched:
            self.stats.prefetch_issued += 1
        return victim

    def note_prefetched_miss(self) -> None:
        """Record that the last miss was covered by a prefetch prediction."""
        self.stats.prefetched_misses += 1

    # -- introspection ------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr % self._num_sets]

    @property
    def num_resident(self) -> int:
        return sum(len(s) for s in self._sets)

    def reset(self) -> None:
        self.stats.reset()
        for way in self._sets:
            way.clear()
