"""Hardware prefetcher models.

Section II-A of the paper describes two classes of prefetch units in the
Core microarchitecture: simple next-line (sequential) detectors and
advanced units that (a) keep an access history for the most frequently
touched regions and (b) track the stride between successive fetches.
This module models both:

* :class:`SequentialPrefetcher` — predicts ``line + 1`` after two
  consecutive line accesses in the same region.
* :class:`StridePrefetcher` — a small table of reference streams keyed
  by memory region; once a stream repeats a stride with enough
  confidence, the next ``degree`` strided lines are predicted.

Predictions are returned to the hierarchy, which installs them into the
cache tagged as prefetched; a subsequent demand miss on a predicted line
is charged the sequential (cheap) latency.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Lines covered by one region entry (4 KB region / 64 B line).
_REGION_LINES = 64


@dataclass
class _Stream:
    last_line: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Stride-detecting prefetcher with a bounded stream table."""

    def __init__(
        self,
        table_size: int = 16,
        degree: int = 2,
        max_stride: int = 8,
        min_confidence: int = 1,
    ):
        self.table_size = table_size
        self.degree = degree
        self.max_stride = max_stride
        self.min_confidence = min_confidence
        self._streams: dict[int, _Stream] = {}

    def observe(self, line_addr: int) -> list[int]:
        """Feed one demand line access; returns predicted line addresses."""
        region = line_addr // _REGION_LINES
        stream = self._streams.get(region)
        if stream is None:
            self._evict_if_full()
            self._streams[region] = _Stream(last_line=line_addr)
            return []
        stride = line_addr - stream.last_line
        predictions: list[int] = []
        if stride == 0:
            return predictions
        if stride == stream.stride:
            stream.confidence += 1
        else:
            # A freshly detected stride starts with confidence one: the
            # simple next-line units fire on the first sequential pair.
            stream.stride = stride
            stream.confidence = 1
        if (
            stream.confidence >= self.min_confidence
            and abs(stream.stride) <= self.max_stride
        ):
            predictions = [
                line_addr + stride * (i + 1) for i in range(self.degree)
            ]
        stream.last_line = line_addr
        # Keep the stream most recently used.
        self._streams.pop(region)
        self._streams[region] = stream
        return [p for p in predictions if p >= 0]

    def _evict_if_full(self) -> None:
        while len(self._streams) >= self.table_size:
            oldest = next(iter(self._streams))
            self._streams.pop(oldest)

    def reset(self) -> None:
        self._streams.clear()


class SequentialPrefetcher(StridePrefetcher):
    """Next-line prefetcher: a stride prefetcher fixed to stride one."""

    def __init__(self, table_size: int = 8, degree: int = 1):
        super().__init__(
            table_size=table_size,
            degree=degree,
            max_stride=1,
            min_confidence=1,
        )

    def observe(self, line_addr: int) -> list[int]:
        predictions = super().observe(line_addr)
        return [p for p in predictions if p == line_addr + 1 or p == line_addr + 2]
