"""Execution probes: the software stand-in for OProfile.

Engines report *logical events* to a probe — function calls, retired
instruction estimates, data accesses with virtual addresses — and the
probe drives the cache model and accumulates the counters the paper
reads from the CPU's performance event units: retired instructions,
function calls, D1-cache accesses, miss/prefetch statistics.

Two implementations share the interface:

* :class:`Probe` — the real thing, used by the profiling experiments
  (Figures 5 and 6) on small inputs;
* :class:`NullProbe` — no-op, used by timing benchmarks so hot paths pay
  nothing for instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim import costs
from repro.memsim.hierarchy import MemoryHierarchy
from repro.storage.page import PAGE_SIZE

#: Virtual address regions: each heap file gets a 16 GiB window, scratch
#: allocations (operator state, staging buffers, hash directories) start
#: above all file windows.
_FILE_WINDOW = 1 << 34
_SCRATCH_BASE = 1 << 50


class AddressSpace:
    """Assigns stable virtual addresses to pages and scratch objects."""

    def __init__(self) -> None:
        self._scratch_cursor = _SCRATCH_BASE

    @staticmethod
    def page_addr(file_id: int, page_no: int, offset: int = 0) -> int:
        """Virtual address of a byte inside a stored page."""
        return file_id * _FILE_WINDOW + page_no * PAGE_SIZE + offset

    def alloc(self, nbytes: int, align: int = costs.CACHE_LINE) -> int:
        """Reserve a scratch region (hash tables, staging areas...)."""
        cursor = -(-self._scratch_cursor // align) * align
        self._scratch_cursor = cursor + max(nbytes, 1)
        return cursor


class NullProbe:
    """Instrumentation sink that does nothing (timing runs)."""

    enabled = False

    def call(self, n: int = 1) -> None:
        pass

    def instr(self, n: int) -> None:
        pass

    def load(self, addr: int, size: int = 8) -> None:
        pass

    def touch_page(self, file_id: int, page_no: int, nbytes: int) -> None:
        pass


#: Shared singleton; engines default to this.
NULL_PROBE = NullProbe()


class Probe(NullProbe):
    """Counting probe wired to a :class:`MemoryHierarchy`."""

    enabled = True

    def __init__(self, hierarchy: MemoryHierarchy | None = None):
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy()
        self.space = AddressSpace()
        self.instructions = 0
        self.function_calls = 0
        self.data_accesses = 0

    # -- event sinks -------------------------------------------------------------
    def call(self, n: int = 1) -> None:
        """Record ``n`` function call/return pairs."""
        self.function_calls += n
        self.instructions += n * costs.CALL_INSTRUCTIONS

    def instr(self, n: int) -> None:
        """Record ``n`` retired instructions of straight-line work."""
        self.instructions += n

    def load(self, addr: int, size: int = 8) -> None:
        """Record one data access of ``size`` bytes at virtual ``addr``.

        The load instruction itself retires too, so one instruction is
        charged here on top of any block estimate.
        """
        self.data_accesses += 1
        self.instructions += 1
        self.hierarchy.access(addr, size)

    def touch_page(self, file_id: int, page_no: int, nbytes: int) -> None:
        """Record a sequential sweep over the head of a page.

        Used by scan code for the initial page fetch: the paper's access
        pattern "favors the utilization of the hardware prefetcher on the
        first iteration over each page's tuples".
        """
        base = self.space.page_addr(file_id, page_no)
        line = costs.CACHE_LINE
        for off in range(0, max(nbytes, 1), line):
            self.data_accesses += 1
            self.instructions += 1
            self.hierarchy.access(base + off, line)

    # -- derived metrics -----------------------------------------------------------
    @property
    def instruction_cycles(self) -> float:
        return self.instructions * costs.IDEAL_CPI

    @property
    def resource_stall_cycles(self) -> float:
        return (
            self.function_calls * costs.CALL_RESOURCE_STALL_CYCLES
            + self.instructions
            * costs.BASE_RESOURCE_STALL_PER_100_INSTR
            / 100.0
        )

    @property
    def total_cycles(self) -> float:
        return (
            self.instruction_cycles
            + self.resource_stall_cycles
            + self.hierarchy.stats.total_stall_cycles
        )

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.total_cycles / self.instructions

    @property
    def seconds(self) -> float:
        return self.total_cycles / costs.CPU_FREQUENCY_HZ

    def reset(self) -> None:
        self.instructions = 0
        self.function_calls = 0
        self.data_accesses = 0
        self.hierarchy.reset()


@dataclass
class ProfileReport:
    """The measurements reported in Figures 5(c,d) and 6(c,d)."""

    label: str
    cpi: float
    retired_instructions: int
    function_calls: int
    d1_accesses: int
    d1_prefetch_efficiency: float
    l2_prefetch_efficiency: float
    instruction_cycles: float
    resource_stall_cycles: float
    d1_stall_cycles: float
    l2_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.instruction_cycles
            + self.resource_stall_cycles
            + self.d1_stall_cycles
            + self.l2_stall_cycles
        )

    @property
    def model_seconds(self) -> float:
        """Simulated wall time on the modelled 1.86 GHz core."""
        return self.total_cycles / costs.CPU_FREQUENCY_HZ


def snapshot(label: str, probe: Probe) -> ProfileReport:
    """Freeze a probe's counters into a :class:`ProfileReport`."""
    return ProfileReport(
        label=label,
        cpi=probe.cpi,
        retired_instructions=probe.instructions,
        function_calls=probe.function_calls,
        d1_accesses=probe.data_accesses,
        d1_prefetch_efficiency=probe.hierarchy.d1.stats.prefetch_efficiency,
        l2_prefetch_efficiency=probe.hierarchy.l2.stats.prefetch_efficiency,
        instruction_cycles=probe.instruction_cycles,
        resource_stall_cycles=probe.resource_stall_cycles,
        d1_stall_cycles=probe.hierarchy.stats.d1_miss_stall_cycles,
        l2_stall_cycles=probe.hierarchy.stats.l2_miss_stall_cycles,
    )
