"""The simulated memory hierarchy: D1 → L2 → RAM with prefetchers.

Demand accesses walk the hierarchy top-down.  Latency charging follows
the paper's measurement methodology (Section VI):

* D1 hit: uniform 3 cycles (folded into instruction execution — the
  paper's breakdown charts do not show D1-hit time as stall time);
* D1 miss, L2 hit: 9 cycles if a prefetcher had predicted the line,
  else 14 (the sequential/random L2 latencies of Table I);
* L2 miss: 28 cycles if predicted, else 77 (sequential/random memory).

Prefetchers observe the demand line stream at each level; their
predictions go into a bounded pending set.  A demand miss on a pending
line counts as a *prefetched miss* — it is charged the sequential
latency, and it is the numerator of the paper's prefetch-efficiency
metric ("the number of prefetched cache lines over the total number of
missed cache lines").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim import costs
from repro.memsim.cache import Cache, CacheConfig
from repro.memsim.prefetch import SequentialPrefetcher, StridePrefetcher

#: Maximum outstanding prefetch predictions per level; models the limited
#: number of concurrent requests the cache controller can serve.
_PENDING_LIMIT = 64


@dataclass
class HierarchyStats:
    """Aggregate stall-cycle accounting."""

    d1_miss_stall_cycles: float = 0.0
    l2_miss_stall_cycles: float = 0.0

    @property
    def total_stall_cycles(self) -> float:
        return self.d1_miss_stall_cycles + self.l2_miss_stall_cycles

    def reset(self) -> None:
        self.d1_miss_stall_cycles = 0.0
        self.l2_miss_stall_cycles = 0.0


class MemoryHierarchy:
    """D1 + L2 + memory model of the Intel Core 2 Duo 6300."""

    def __init__(
        self,
        d1_size: int = costs.D1_SIZE,
        l2_size: int = costs.L2_SIZE,
        line_size: int = costs.CACHE_LINE,
    ):
        self.line_size = line_size
        self.d1 = Cache(CacheConfig("D1", d1_size, line_size, costs.D1_ASSOC))
        self.l2 = Cache(CacheConfig("L2", l2_size, line_size, costs.L2_ASSOC))
        #: D1 keeps a simple next-line unit; L2 a deeper stride unit —
        #: the division of labour Figure 1 of the paper sketches.
        self.d1_prefetcher = SequentialPrefetcher(degree=2)
        self.l2_prefetcher = StridePrefetcher(table_size=32, degree=4)
        self._d1_pending: dict[int, None] = {}
        self._l2_pending: dict[int, None] = {}
        self.stats = HierarchyStats()

    # -- demand access -------------------------------------------------------
    def access(self, addr: int, size: int = 8) -> float:
        """Demand-access ``size`` bytes at ``addr``; returns stall cycles."""
        first = addr // self.line_size
        last = (addr + max(size, 1) - 1) // self.line_size
        cycles = 0.0
        for line in range(first, last + 1):
            cycles += self._access_line(line)
        return cycles

    def _access_line(self, line: int) -> float:
        self._predict(self.d1_prefetcher, line, self._d1_pending)
        if self.d1.access(line):
            return 0.0

        d1_covered = self._consume_pending(self._d1_pending, line)
        if d1_covered:
            self.d1.note_prefetched_miss()

        self._predict(self.l2_prefetcher, line, self._l2_pending)
        if self.l2.access(line):
            stall = (
                costs.L1_MISS_SEQ_CYCLES
                if d1_covered
                else costs.L1_MISS_RAND_CYCLES
            )
            self.stats.d1_miss_stall_cycles += stall
            self.d1.install(line)
            return stall

        l2_covered = self._consume_pending(self._l2_pending, line)
        if l2_covered:
            self.l2.note_prefetched_miss()
        stall = (
            costs.L2_MISS_SEQ_CYCLES
            if l2_covered
            else costs.L2_MISS_RAND_CYCLES
        )
        self.stats.l2_miss_stall_cycles += stall
        self.l2.install(line)
        self.d1.install(line)
        return stall

    # -- prefetch bookkeeping -----------------------------------------------------
    @staticmethod
    def _predict(prefetcher, line: int, pending: dict[int, None]) -> None:
        for predicted in prefetcher.observe(line):
            if predicted in pending:
                continue
            while len(pending) >= _PENDING_LIMIT:
                pending.pop(next(iter(pending)))
            pending[predicted] = None

    @staticmethod
    def _consume_pending(pending: dict[int, None], line: int) -> bool:
        if line in pending:
            del pending[line]
            return True
        return False

    # -- management -----------------------------------------------------------
    def reset(self) -> None:
        self.d1.reset()
        self.l2.reset()
        self.d1_prefetcher.reset()
        self.l2_prefetcher.reset()
        self._d1_pending.clear()
        self._l2_pending.clear()
        self.stats.reset()
