"""Cost model constants for the simulated Intel Core 2 Duo 6300.

All latencies come straight from Table I of the paper; the instruction
cost constants are the model parameters that translate *logical* engine
events (a function call, a predicate evaluation, an iterator state
update) into retired-instruction estimates.  They are chosen to be in
the range architecture texts give for x86-64 (a call/return pair with
register save/restore costs tens of instructions) and, importantly, they
are *shared by every engine*, so the relative shapes the experiments
report are driven by event counts, not by tuning per engine.
"""

from __future__ import annotations

# -- clock ------------------------------------------------------------------

#: Processor frequency in Hz (1.86 GHz Core 2 Duo 6300).
CPU_FREQUENCY_HZ = 1_860_000_000

#: Best-case cycles per instruction (4-wide superscalar).
IDEAL_CPI = 0.25

# -- memory hierarchy (Table I) ----------------------------------------------

#: Cache line size in bytes.
CACHE_LINE = 64

#: D1 cache: 32 KB, 8-way (Core 2), per core.
D1_SIZE = 32 * 1024
D1_ASSOC = 8

#: L2 cache: 2 MB, 8-way, shared.
L2_SIZE = 2 * 1024 * 1024
L2_ASSOC = 8

#: D1 hit cost in cycles (uniform for sequential and random access).
D1_HIT_CYCLES = 3

#: D1 miss served by L2: sequential (prefetched) vs random latencies.
L1_MISS_SEQ_CYCLES = 9
L1_MISS_RAND_CYCLES = 14

#: L2 miss served by memory: sequential (prefetched) vs random latencies.
L2_MISS_SEQ_CYCLES = 28
L2_MISS_RAND_CYCLES = 77

# -- logical event costs (retired-instruction estimates) ----------------------

#: A function call/return pair: stack frame setup, register save/restore.
#: "With tens of registers in current CPUs, frequent function calls may
#: lead to significant overhead" (Section II-B).
CALL_INSTRUCTIONS = 18

#: Extra pipeline resource-stall cycles charged per function call: the
#: jump forces a new instruction stream into the pipeline and limits
#: superscalar execution (Section II-B).
CALL_RESOURCE_STALL_CYCLES = 7.0

#: Resource-stall cycles charged per 100 retired instructions to model
#: data/control dependency chains even in straight-line code.
BASE_RESOURCE_STALL_PER_100_INSTR = 1.5

#: One loop iteration's bookkeeping (increment, compare, branch).
LOOP_ITER_INSTRUCTIONS = 3

#: Evaluating one primitive-type predicate inline (load, compare, branch).
PREDICATE_INSTRUCTIONS = 3

#: Decoding/copying one fixed-length field by direct offset.
FIELD_ACCESS_INSTRUCTIONS = 2

#: Touching and updating iterator state on a ``next()`` boundary
#: (current page/slot bookkeeping kept in the operator object).
ITERATOR_STATE_INSTRUCTIONS = 8

#: Computing a hash/modulo partition target for one tuple.
HASH_INSTRUCTIONS = 6

#: One comparison-and-swap step inside sorting.
SORT_STEP_INSTRUCTIONS = 6

#: Updating one aggregate value (load, arithmetic op, store).
AGGREGATE_UPDATE_INSTRUCTIONS = 3

#: Copying one tuple into an output/staging buffer, per 8-byte word.
COPY_WORD_INSTRUCTIONS = 1
