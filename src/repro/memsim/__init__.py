"""Memory-hierarchy simulator: the stand-in for hardware perf counters.

See DESIGN.md §2 — this package substitutes for OProfile + the physical
Core 2 Duo memory system in the paper's profiling experiments.
"""

from repro.memsim import costs
from repro.memsim.cache import Cache, CacheConfig, CacheStats
from repro.memsim.hierarchy import HierarchyStats, MemoryHierarchy
from repro.memsim.prefetch import SequentialPrefetcher, StridePrefetcher
from repro.memsim.probe import (
    NULL_PROBE,
    AddressSpace,
    NullProbe,
    Probe,
    ProfileReport,
    snapshot,
)

__all__ = [
    "AddressSpace",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "HierarchyStats",
    "MemoryHierarchy",
    "NULL_PROBE",
    "NullProbe",
    "Probe",
    "ProfileReport",
    "SequentialPrefetcher",
    "StridePrefetcher",
    "costs",
    "snapshot",
]
