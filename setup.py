"""Shim for legacy editable installs (``pip install -e .``) in
environments whose setuptools predates PEP 660 or lacks ``wheel``.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
