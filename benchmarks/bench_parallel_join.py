"""Parallel join pipeline: serial vs 4-worker hash join + ORDER BY.

PR 2 parallelized only leaf scans, so a join query collapsed back to a
single thread for its most expensive phases: staging both inputs and
running the join body.  With the phase scheduler, staging runs as
morsel-parallel partitioned scans, the fine hash join runs one
generated ``*_pair`` task per matching partition, and the final ORDER
BY runs as per-chunk sorted runs plus a k-way merge — end to end
parallel, with rows byte-identical to the serial run.

The measurement mirrors ``bench_parallel_scan.py``: both tables live in
disk-backed files whose every page fetch carries a modeled seek latency
(``DiskFile(read_latency=...)``), kernel readahead is disabled, and the
buffer pool plus OS page cache are dropped before each timed round.
Staging is therefore latency-bound — the regime where overlapping page
waits across workers banks real wall-clock time on any host — which is
what makes the ≥2.5× acceptance gate deterministic across machines.

Besides the rendered table, the run writes ``BENCH_parallel_join.json``
(consumed by CI as an artifact) with the raw seconds and the speedup.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.plan.optimizer import PlannerConfig
from repro.storage import Catalog, Column, INT, Schema, char
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import DiskFile
from repro.storage.table import Table

WORKERS = 4
ROUNDS = 5
NUM_CUSTOMERS = 256
ORDERS_PER_CUSTOMER = 4
#: Modeled per-page fetch latency: a seek-bound / networked disk.
READ_LATENCY = 1e-3

#: Wide tuples keep pages plentiful and per-page decode cheap relative
#: to the modeled fetch, as in the paper's TPC-H tables.
PAD = char(2000)

SQL = (
    "SELECT orders.cust AS cust, orders.amount AS amount, "
    "customers.region AS region FROM orders, customers "
    "WHERE orders.cust = customers.cust "
    "ORDER BY amount DESC, cust"
)


def _drop_caches(db: Database) -> None:
    """Cold-start a round: empty the buffer pool and the OS page cache."""
    db.buffer.evict_all()
    for table in db.catalog.tables():
        if isinstance(table.file, DiskFile):
            table.file.drop_os_cache()


@pytest.fixture(scope="module")
def join_db(tmp_path_factory):
    base = tmp_path_factory.mktemp("parallel_join")
    buffer = BufferManager(capacity=8192)
    catalog = Catalog(buffer)

    orders_schema = Schema(
        [Column("cust", INT), Column("amount", INT), Column("pad", PAD)]
    )
    orders_file = DiskFile(
        str(base / "orders.pages"), read_latency=READ_LATENCY
    )
    orders = Table("orders", orders_schema, file=orders_file, buffer=buffer)
    orders.load_rows(
        (i % NUM_CUSTOMERS, (i * 7919) % 10_000, f"o{i}")
        for i in range(NUM_CUSTOMERS * ORDERS_PER_CUSTOMER)
    )
    orders_file.advise_random()
    catalog.register(orders)

    customers_schema = Schema(
        [Column("cust", INT), Column("region", INT), Column("pad", PAD)]
    )
    customers_file = DiskFile(
        str(base / "customers.pages"), read_latency=READ_LATENCY
    )
    customers = Table(
        "customers", customers_schema, file=customers_file, buffer=buffer
    )
    customers.load_rows(
        (c, c % 16, f"c{c}") for c in range(NUM_CUSTOMERS)
    )
    customers_file.advise_random()
    catalog.register(customers)
    catalog.analyze()

    # Both join keys have ≤512 distinct values, so forcing the hash
    # algorithm stages fine (value-directory) partitions and the join
    # runs one generated pair task per matching partition.
    db = Database(
        catalog=catalog,
        planner_config=PlannerConfig(force_join="hash"),
        max_workers=WORKERS,
        workers=WORKERS,
    )
    db.set_parallel(morsel_pages=8, min_pages=8, min_rows=64)
    yield db
    db.close()


def _measure(db: Database) -> tuple[float, float, int]:
    """(serial seconds, parallel seconds, pages) for one cold round each."""
    statement = db.prepare(SQL)
    want = statement.execute()  # warm the plan; establish the baseline rows
    pages = sum(t.num_pages for t in db.catalog.tables())

    db.set_parallel(enabled=False)
    statement.execute()  # re-warm the plan under the serial config
    _drop_caches(db)
    started = time.perf_counter()
    serial_rows = statement.execute()
    serial = time.perf_counter() - started

    db.set_parallel(enabled=True)
    statement.execute()
    _drop_caches(db)
    started = time.perf_counter()
    parallel_rows = statement.execute()
    parallel = time.perf_counter() - started

    stats = db.last_exec_stats("hique")
    assert stats is not None and stats.parallel, stats
    assert any(
        phase.name == "join" and phase.workers > 1 for phase in stats.phases
    ), stats
    # The whole point: parallel rows are byte-identical to serial rows.
    assert parallel_rows == serial_rows == want
    return serial, parallel, pages


@pytest.fixture(scope="module")
def join_report(join_db):
    rounds = [_measure(join_db) for _ in range(ROUNDS)]
    # Each mode keeps its best (minimum) time across rounds, damping
    # scheduler noise symmetrically.
    serial = min(r[0] for r in rounds)
    parallel = min(r[1] for r in rounds)
    pages = rounds[0][2]
    best = {
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": serial / parallel,
        "workers": WORKERS,
        "pages": pages,
        "orders_rows": NUM_CUSTOMERS * ORDERS_PER_CUSTOMER,
        "customers_rows": NUM_CUSTOMERS,
    }

    result = ExperimentResult(
        name="Parallel join: serial baseline vs "
        f"{WORKERS}-worker pipeline (cold disk)",
        headers=["mode", "serial s", "parallel s", "speedup"],
    )
    result.add(
        "hash join + ORDER BY (staging/join/sort phases)",
        best["serial_seconds"],
        best["parallel_seconds"],
        best["speedup"],
    )
    result.note(
        f"{pages} disk-backed pages across both inputs, "
        f"{READ_LATENCY * 1000:.0f} ms modeled page latency; buffer pool "
        f"and OS cache dropped before every timed round, so parallel "
        f"staging overlaps genuine read waits. Best of {ROUNDS} rounds; "
        f"parallel rows byte-identical to serial."
    )
    save_result(result)

    save_bench_json("BENCH_parallel_join.json", best)
    return best


def test_report_written(join_report):
    path = os.path.join(RESULTS_DIR, "BENCH_parallel_join.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["workers"] == WORKERS
    assert payload["speedup"] > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup gates are calibrated for >= 4 CPUs",
)
def test_parallel_join_meets_speedup_gate(join_report):
    """Acceptance: ≥2.5× at 4 workers on the latency-bound pipeline."""
    assert join_report["speedup"] >= 2.5, join_report
