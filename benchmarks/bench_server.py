"""Load harness for the TCP query server.

Drives hundreds of concurrent client connections (thousands of
queries) against one in-process :class:`repro.server.QueryServer`
over loopback, with the mixed workload a real service sees:

* **hot** statements — every client prepares the same shape once and
  re-executes it with churning parameters, exercising the
  prepared-handle path and the process-wide plan cache;
* **cold** statements — a rotating pool of one-off query shapes whose
  select-list literals force fresh compilations mid-flight;
* **occasional errors** — deliberately broken SQL that must come back
  as a *typed* ``bind`` response without costing the connection.

Every successful row set is verified byte-identical to a direct
in-process :meth:`Database.execute` of the same statement before any
number is reported.  The run then saturates admission on purpose and
checks backpressure arrives as typed ``over_capacity`` responses.

The run writes ``BENCH_server.json`` (a CI artifact) with ``qps``,
``p50_ms`` and ``p99_ms``; ``qps`` and ``p99_ms`` are gated by
``repro.obs.regress`` against the median of their run history.

Scale via ``REPRO_BENCH_SCALE``: ``tiny`` = 100 clients (quick local
sanity), ``small`` = 600 (default; covers the >=500-connection
acceptance floor), ``medium`` = 2000.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from benchmarks.conftest import (
    BENCH_SCALE,
    RESULTS_DIR,
    save_bench_json,
    save_result,
)
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.errors import AdmissionError, BindError
from repro.server import AsyncQueryClient
from repro.storage import Catalog, Column, DOUBLE, INT, Schema

#: scale → (concurrent clients, queries per client).
SCALES = {
    "tiny": (100, 12),
    "small": (600, 16),
    "medium": (2000, 20),
}
CLIENTS, QUERIES_PER_CLIENT = SCALES.get(BENCH_SCALE, SCALES["small"])

NUM_KEYS = 8
NUM_ROWS = 512
#: Distinct cold statement shapes (each is its own plan-cache entry).
COLD_SHAPES = 16
#: At most this many TCP connects in flight at once — the listen
#: backlog is finite; the fleet still ends fully connected.
CONNECT_RAMP = 64

HOT_SQL = "SELECT a, b FROM t WHERE k = ?"


def cold_sql(shape: int) -> str:
    # The select-list literal lands in the plan-cache key, so every
    # distinct shape compiles fresh on first use: a cold statement.
    return f"SELECT a + {shape} AS s, b FROM t WHERE k = ?"


@pytest.fixture(scope="module")
def server_db():
    catalog = Catalog()
    table = catalog.create_table(
        "t",
        Schema(
            [
                Column("a", INT),
                Column("b", DOUBLE),
                Column("k", INT),
            ]
        ),
    )
    table.load_rows(
        (i, (i * 7919 % 1000) / 7.0, i % NUM_KEYS)
        for i in range(NUM_ROWS)
    )
    catalog.analyze()
    db = Database(catalog=catalog, max_workers=8)
    # Throughput phase should measure latency, not admission refusals;
    # the overload phase tightens this knob back down deliberately.
    db.service.max_pending = 65536
    yield db
    db.close()


async def _run_fleet(handle, expected_hot, expected_cold):
    """All clients connect, rendezvous, then query concurrently.

    Returns (hot latencies, wall seconds, counters, peak connections).
    """
    barrier = asyncio.Barrier(CLIENTS + 1)
    ramp = asyncio.Semaphore(CONNECT_RAMP)
    hot_latencies: list[float] = []
    counters = {"ok": 0, "cold_ok": 0, "bind_errors": 0}

    async def one_client(i: int) -> None:
        async with ramp:
            client = await AsyncQueryClient.connect(*handle.address)
        try:
            statement = await client.prepare(HOT_SQL)
            await barrier.wait()  # everyone is connected before load
            for j in range(QUERIES_PER_CLIENT):
                key = (i * 31 + j) % NUM_KEYS
                if (i + j) % 11 == 3:
                    shape = (i * 7 + j) % COLD_SHAPES
                    rows = await client.query(
                        cold_sql(shape), params=[key]
                    )
                    assert rows == expected_cold[shape, key]
                    counters["cold_ok"] += 1
                elif (i + j) % 23 == 5:
                    try:
                        await client.query("SELECT nope FROM t")
                    except BindError:
                        counters["bind_errors"] += 1
                else:
                    started = time.perf_counter()
                    rows = await client.execute(statement, [key])
                    hot_latencies.append(
                        time.perf_counter() - started
                    )
                    assert rows == expected_hot[key]
                    counters["ok"] += 1
        finally:
            await client.close()

    tasks = [
        asyncio.create_task(one_client(i)) for i in range(CLIENTS)
    ]
    await barrier.wait()
    peak_connections = handle.stats().connections_active
    started = time.perf_counter()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    return hot_latencies, wall, counters, peak_connections


async def _overload_probe(handle, attempts: int = 32) -> int:
    """Hammer a zero-capacity pool; count typed over_capacity answers."""
    rejected = 0

    async def one(i: int) -> None:
        nonlocal rejected
        async with await AsyncQueryClient.connect(
            *handle.address
        ) as client:
            try:
                await client.query(
                    HOT_SQL.replace("?", str(i % NUM_KEYS))
                )
            except AdmissionError:
                rejected += 1

    await asyncio.gather(*(one(i) for i in range(attempts)))
    return rejected


def _percentile(sorted_values: list[float], q: float) -> float:
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


@pytest.fixture(scope="module")
def server_report(server_db):
    expected_hot = {
        k: server_db.execute(HOT_SQL, params=(k,))
        for k in range(NUM_KEYS)
    }
    expected_cold = {
        (shape, k): server_db.execute(cold_sql(shape), params=(k,))
        for shape in range(COLD_SHAPES)
        for k in range(NUM_KEYS)
    }
    handle = server_db.serve()
    try:
        latencies, wall, counters, peak = asyncio.run(
            _run_fleet(handle, expected_hot, expected_cold)
        )
        total_ok = counters["ok"] + counters["cold_ok"]

        server_db.service.max_pending = 0
        try:
            rejected = asyncio.run(_overload_probe(handle))
        finally:
            server_db.service.max_pending = 65536
        server_stats = handle.stats()
    finally:
        handle.stop()

    latencies.sort()
    payload = {
        "clients": CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "peak_connections": peak,
        "queries_ok": total_ok,
        "hot_queries": counters["ok"],
        "cold_queries": counters["cold_ok"],
        "bind_errors": counters["bind_errors"],
        "over_capacity_rejections": rejected,
        "qps": total_ok / wall,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "wall_seconds": wall,
        "server_errors": server_stats.errors,
        "watchdog_timeouts": server_stats.watchdog_timeouts,
    }

    result = ExperimentResult(
        name="Query server under load: mixed hot/cold statements "
        f"({CLIENTS} concurrent connections)",
        headers=["metric", "value"],
    )
    result.add("concurrent connections (peak)", peak)
    result.add("queries completed", total_ok)
    result.add("QPS", payload["qps"])
    result.add("p50 latency (ms)", payload["p50_ms"])
    result.add("p99 latency (ms)", payload["p99_ms"])
    result.note(
        f"{CLIENTS} async clients x {QUERIES_PER_CLIENT} queries over "
        f"loopback NDJSON; every row set verified byte-identical to a "
        f"direct Database.execute before timing counts. Workload mixes "
        f"prepared-handle reuse ({counters['ok']} hot), fresh "
        f"compilations ({counters['cold_ok']} cold across "
        f"{COLD_SHAPES} shapes), and {counters['bind_errors']} "
        f"deliberate bind errors answered as typed responses."
    )
    save_result(result)

    save_bench_json("BENCH_server.json", payload)
    return payload


def test_report_written(server_report):
    path = os.path.join(RESULTS_DIR, "BENCH_server.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["clients"] == CLIENTS
    assert payload["qps"] > 0
    assert payload["p99_ms"] >= payload["p50_ms"]


def test_sustains_concurrent_connection_floor(server_report):
    """Acceptance: the harness holds every client connected at once
    (>= 500 concurrent at the default scale and above)."""
    assert server_report["peak_connections"] >= CLIENTS


def test_every_admitted_query_completed(server_report):
    expected_errors = (
        server_report["bind_errors"]
        + server_report["over_capacity_rejections"]
    )
    assert server_report["queries_ok"] > 0
    assert server_report["server_errors"] == expected_errors
    assert server_report["watchdog_timeouts"] == 0


def test_saturation_answers_typed_over_capacity(server_report):
    """A zero-capacity pool refuses loudly, it does not drop sockets."""
    assert server_report["over_capacity_rejections"] > 0
