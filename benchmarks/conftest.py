"""Shared benchmark infrastructure.

Every benchmark module regenerates one of the paper's tables/figures:
the rendered text table is printed and saved under
``benchmarks/results/`` so a ``pytest benchmarks/ --benchmark-only`` run
leaves the full reproduction record behind, alongside pytest-benchmark's
own timing statistics.

Set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``small`` / ``medium`` (default
``small``) to trade fidelity against wall time.
"""

from __future__ import annotations

import datetime
import json
import os

import pytest

from repro.bench.reporting import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Workload scale for all benchmark modules.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def save_result(result: ExperimentResult) -> None:
    """Print a reproduced table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = result.render()
    print()
    print(text)
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in result.name.split(":")[0]
    ).strip("_").lower()
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


#: Bench history entries kept per artifact (oldest dropped first).
HISTORY_LIMIT = 50


def host_fingerprint() -> dict:
    """The hardware/runtime facts that make bench numbers comparable.

    Stamped into every ``BENCH_*.json`` run so the regression gate
    (``repro.obs.regress``) can skip history entries recorded on
    incomparably sized hosts — a 2-core CI runner's parallel speedups
    say nothing about an 8-core one's.
    """
    import multiprocessing

    return {
        "cpu_count": os.cpu_count(),
        "start_methods": multiprocessing.get_all_start_methods(),
    }


def save_bench_json(filename: str, payload: dict) -> dict:
    """Persist a ``BENCH_*.json`` artifact with run-over-run history.

    The current run's numbers stay at the top level (CI gates and the
    ``test_report_written`` checks read them there); the previous run's
    snapshot is appended to a bounded ``history`` list, and any metric
    present in both runs is printed as a comparison so a regression is
    visible straight in the bench log.  Each run also records a
    ``host`` fingerprint (CPU count, available process start methods)
    so downstream gates can filter history by host comparability.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    history: list[dict] = []
    previous: dict | None = None
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                old = json.load(handle)
        except (OSError, json.JSONDecodeError):
            old = None
        if isinstance(old, dict):
            raw = old.get("history", [])
            history = [h for h in raw if isinstance(h, dict)]
            previous = {k: v for k, v in old.items() if k != "history"}
    out = dict(payload)
    out["host"] = host_fingerprint()
    out["recorded_at"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ")
    )
    if previous is not None:
        history.append(previous)
        print(f"\n{filename}: vs previous run "
              f"({previous.get('recorded_at', 'unstamped')})")
        for key in sorted(set(payload) & set(previous)):
            cur, prev = payload[key], previous[key]
            if (
                isinstance(cur, (int, float))
                and isinstance(prev, (int, float))
                and not isinstance(cur, bool)
                and prev
            ):
                delta = (cur / prev - 1.0) * 100.0
                print(f"  {key}: {prev:.6g} -> {cur:.6g} ({delta:+.1f}%)")
    out["history"] = history[-HISTORY_LIMIT:]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
    return out


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in os.listdir(RESULTS_DIR):
        if name.endswith(".txt"):
            os.remove(os.path.join(RESULTS_DIR, name))
    yield
