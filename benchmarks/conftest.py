"""Shared benchmark infrastructure.

Every benchmark module regenerates one of the paper's tables/figures:
the rendered text table is printed and saved under
``benchmarks/results/`` so a ``pytest benchmarks/ --benchmark-only`` run
leaves the full reproduction record behind, alongside pytest-benchmark's
own timing statistics.

Set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``small`` / ``medium`` (default
``small``) to trade fidelity against wall time.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Workload scale for all benchmark modules.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def save_result(result: ExperimentResult) -> None:
    """Print a reproduced table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = result.render()
    print()
    print(text)
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in result.name.split(":")[0]
    ).strip("_").lower()
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in os.listdir(RESULTS_DIR):
        if name.endswith(".txt"):
            os.remove(os.path.join(RESULTS_DIR, name))
    yield
