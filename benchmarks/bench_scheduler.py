"""Adaptive (mixed) placement vs forced single-backend placement.

One query, two regimes at once: the ``orders`` scan is latency-bound
(disk-backed pages behind a modeled per-fetch seek), while the nested
join it feeds is CPU-dense (O(outer × inner) compute over in-memory
row chunks).  Neither forced placement can win both —

* ``placement="thread"`` overlaps the page waits (scan fast) but the
  GIL serializes the join's pair evaluation (join slow);
* ``placement="process"`` ships join tasks past the GIL (join fast)
  but must materialize and pickle every page *in the parent* at
  submission time, so the scan's modeled latency is paid serially
  (scan slow);
* ``placement="auto"`` routes per batch through the cost model —
  staged scan on threads, join pair tasks on processes — and should
  beat the best single-backend run on wall-clock.

The forced thread and process rounds run first and double as
calibration: every batch they execute reports its measured latency
into the executor's compute-per-byte model, so the adaptive round
routes on observed rates, not static seeds.  Rows are asserted
byte-identical across serial and all three placements before any
timing counts, and the adaptive run must report ``backend == "mixed"``.

The run writes ``BENCH_scheduler.json`` (a CI artifact, gated by
``repro.obs.regress`` on ``mixed_speedup``) with the raw seconds and
the mixed-over-best-single-backend speedup.  The ≥1.2× acceptance gate
needs real cores *and* real fetch overlap: it is skipped, not failed,
on hosts with ``os.cpu_count() < 4``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.plan.optimizer import PlannerConfig
from repro.storage import Catalog, Column, INT, Schema, char
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import DiskFile
from repro.storage.table import Table

WORKERS = 4
ROUNDS = 3
NUM_CUSTOMERS = 1024
ORDERS_PER_CUSTOMER = 8
NUM_REGIONS = 16
#: Modeled per-page fetch latency: a seek-bound / networked disk.
READ_LATENCY = 1e-3

#: Pads the orders tuples so the scan is page-rich (hundreds of
#: modeled fetches) while the filtered rows crossing into the join
#: stay narrow.
PAD = char(300)

#: ~30%-selective filter keeps the nested join's outer side large
#: enough that pair evaluation dominates thread-placement wall-clock.
SQL = (
    "SELECT customers.region AS region, "
    "sum(orders.amount * orders.qty) AS revenue, count(*) AS n "
    "FROM orders, customers "
    "WHERE orders.cust = customers.cust "
    "AND orders.amount * orders.qty < 150000 "
    "GROUP BY customers.region ORDER BY revenue DESC, region"
)


def _drop_caches(db: Database) -> None:
    """Cold-start a timed run: empty buffer pool and OS page cache."""
    db.buffer.evict_all()
    for table in db.catalog.tables():
        if isinstance(table.file, DiskFile):
            table.file.drop_os_cache()


@pytest.fixture(scope="module")
def scheduler_db(tmp_path_factory):
    base = tmp_path_factory.mktemp("scheduler")
    buffer = BufferManager(capacity=8192)
    catalog = Catalog(buffer)

    orders_schema = Schema(
        [
            Column("cust", INT),
            Column("amount", INT),
            Column("qty", INT),
            Column("pad", PAD),
        ]
    )
    file = DiskFile(str(base / "orders.pages"), read_latency=READ_LATENCY)
    orders = Table("orders", orders_schema, file=file, buffer=buffer)
    orders.load_rows(
        (
            i % NUM_CUSTOMERS,
            (i * 7919) % 10_000,
            i % 50,
            f"o{i}",
        )
        for i in range(NUM_CUSTOMERS * ORDERS_PER_CUSTOMER)
    )
    file.advise_random()
    catalog.register(orders)

    customers = catalog.create_table(
        "customers",
        Schema([Column("cust", INT), Column("region", INT)]),
    )
    customers.load_rows(
        (c, c % NUM_REGIONS) for c in range(NUM_CUSTOMERS)
    )
    catalog.analyze()

    db = Database(
        catalog=catalog,
        planner_config=PlannerConfig(force_join="nested"),
        max_workers=WORKERS,
        workers=WORKERS,
    )
    db.set_parallel(morsel_pages=8, min_pages=4, min_rows=512)
    yield db
    db.close()


def _timed(statement) -> float:
    started = time.perf_counter()
    statement.execute()
    return time.perf_counter() - started


def _measure(db: Database) -> tuple[float, float, float]:
    """One round: (thread s, process s, auto s), cold per timed run.

    The forced rounds run first on purpose: every batch they execute
    feeds its measured latency into the shared cost model, so the
    adaptive round chooses on calibrated rates.
    """
    statement = db.prepare(SQL)

    db.set_parallel(enabled=False)
    baseline = statement.execute()  # serial: the correctness reference

    db.set_parallel(enabled=True, placement="thread")
    thread_rows = statement.execute()  # warm plan + pool (+ calibrate)
    _drop_caches(db)
    thread_seconds = _timed(statement)

    db.set_parallel(enabled=True, placement="process")
    process_rows = statement.execute()  # warm pool + worker imports
    _drop_caches(db)
    process_seconds = _timed(statement)

    db.set_parallel(enabled=True, placement="auto")
    auto_rows = statement.execute()
    _drop_caches(db)
    auto_seconds = _timed(statement)

    stats = db.last_exec_stats("hique")
    assert stats is not None and stats.parallel, stats
    assert stats.placement == "auto", stats
    if (os.cpu_count() or 1) >= 4:
        # The whole point: the chooser split the query across backends
        # — staged scan on threads, CPU-dense join on processes.  On
        # starved hosts the calibrated answer is all-thread (processes
        # cannot pay for themselves without cores), so this only holds
        # where the speedup gate runs.
        assert stats.backend == "mixed", stats
    # Rows are byte-identical under every placement.
    assert thread_rows == process_rows == auto_rows == baseline
    return thread_seconds, process_seconds, auto_seconds


@pytest.fixture(scope="module")
def scheduler_report(scheduler_db):
    rounds = [_measure(scheduler_db) for _ in range(ROUNDS)]
    thread_s = min(r[0] for r in rounds)
    process_s = min(r[1] for r in rounds)
    auto_s = min(r[2] for r in rounds)
    best_single = min(thread_s, process_s)
    pages = sum(t.num_pages for t in scheduler_db.catalog.tables())
    best = {
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "auto_seconds": auto_s,
        "best_single_seconds": best_single,
        "mixed_speedup": best_single / auto_s,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "pages": pages,
        "orders_rows": NUM_CUSTOMERS * ORDERS_PER_CUSTOMER,
        "customers_rows": NUM_CUSTOMERS,
    }

    result = ExperimentResult(
        name="Adaptive placement: mixed thread/process vs forced "
        f"single-backend ({WORKERS} workers, disk scan + nested join)",
        headers=[
            "placement", "thread s", "process s", "auto s", "speedup"
        ],
    )
    result.add(
        "stage=thread ∥ join=process (cost-model routed)",
        best["thread_seconds"],
        best["process_seconds"],
        best["auto_seconds"],
        best["mixed_speedup"],
    )
    result.note(
        f"{pages} pages of disk-backed orders behind "
        f"{READ_LATENCY * 1000:.0f} ms modeled page latency feed a "
        f"CPU-dense nested join. Forced thread placement overlaps the "
        f"fetches but serializes the join on the GIL; forced process "
        f"placement scales the join but pays the page latency serially "
        f"in the parent at submission. The adaptive chooser routes the "
        f"scan to threads and the join to processes inside one query. "
        f"Buffer pool and OS cache dropped before every timed run; "
        f"best of {ROUNDS} rounds; rows byte-identical across serial "
        f"and all three placements; speedup = best single-backend / "
        f"auto."
    )
    save_result(result)

    save_bench_json("BENCH_scheduler.json", best)
    return best


def test_report_written(scheduler_report):
    path = os.path.join(RESULTS_DIR, "BENCH_scheduler.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["workers"] == WORKERS
    assert payload["mixed_speedup"] > 0
    assert payload["host"]["cpu_count"] == os.cpu_count()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="mixed-placement gate needs >= 4 CPUs (neither the fetch "
    "overlap nor the process join can bank wall-clock time without "
    "real concurrency)",
)
def test_mixed_meets_speedup_gate(scheduler_report):
    """Acceptance: adaptive ≥1.2× over the best single-backend run."""
    assert scheduler_report["mixed_speedup"] >= 1.2, scheduler_report
