"""Pipelined (dependency-driven) vs barrier phase scheduling.

Barrier scheduling walks the operator list one node at a time: the
``customers`` scan only starts after the ``orders`` scan has fully
drained, so with 4 workers the query never holds more than 4 page
fetches in flight even though the two staging scans are completely
independent.  The pipelined scheduler launches every operator the
moment its inputs complete — both inputs of the staged hash join stage
*concurrently* (8 overlapped page waits), and the join's pair tasks
start the instant the second side's partitions finish rather than at a
phase barrier.

Both tables live in disk-backed files whose every page fetch carries a
modeled seek latency (``DiskFile(read_latency=...)``): staging is
latency-bound, the regime where doubling the in-flight fetch count
halves the stage wall-clock on any host (the waits release the GIL, so
this speedup is deterministic — unlike CPU∥I/O overlap, which CPython's
scheduler arbitrates).  Both modes run the identical parallel
configuration; only the scheduling changes, and rows are asserted
byte-identical across serial, barrier and pipelined executions before
any timing counts.  The pipelined run must also report nonzero
``PhaseStats.overlap_seconds`` — the new overlap accounting.

The run writes ``BENCH_pipeline.json`` (a CI artifact) with the raw
seconds and the speedup.  The ≥1.3× acceptance gate needs real
concurrency: it is skipped, not failed, on hosts with
``os.cpu_count() < 4``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.plan.optimizer import PlannerConfig
from repro.storage import Catalog, Column, INT, Schema, char
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import DiskFile
from repro.storage.table import Table

WORKERS = 4
ROUNDS = 5
NUM_CUSTOMERS = 400
ORDERS_PER_CUSTOMER = 2
#: Modeled per-page fetch latency: a seek-bound / networked disk.
READ_LATENCY = 1e-3

#: Wide tuples keep both inputs page-rich and per-page decode cheap
#: relative to the modeled fetch.
PAD = char(2000)

#: Staged fine-hash join + aggregation: both inputs partition while
#: staging, the join runs one generated pair task per matching
#: partition, and the grouped aggregation folds the join output.
SQL = (
    "SELECT customers.region AS region, sum(orders.amount) AS revenue, "
    "count(*) AS n FROM orders, customers "
    "WHERE orders.cust = customers.cust "
    "GROUP BY customers.region ORDER BY revenue DESC, region"
)


def _drop_caches(db: Database) -> None:
    """Cold-start a round: empty the buffer pool and the OS page cache."""
    db.buffer.evict_all()
    for table in db.catalog.tables():
        if isinstance(table.file, DiskFile):
            table.file.drop_os_cache()


def _disk_table(base, buffer, name: str, schema: Schema, rows) -> Table:
    file = DiskFile(str(base / f"{name}.pages"), read_latency=READ_LATENCY)
    table = Table(name, schema, file=file, buffer=buffer)
    table.load_rows(rows)
    file.advise_random()
    return table


@pytest.fixture(scope="module")
def pipeline_db(tmp_path_factory):
    base = tmp_path_factory.mktemp("pipeline")
    buffer = BufferManager(capacity=8192)
    catalog = Catalog(buffer)

    catalog.register(
        _disk_table(
            base,
            buffer,
            "orders",
            Schema(
                [Column("cust", INT), Column("amount", INT),
                 Column("pad", PAD)]
            ),
            (
                (i % NUM_CUSTOMERS, (i * 7919) % 10_000, f"o{i}")
                for i in range(NUM_CUSTOMERS * ORDERS_PER_CUSTOMER)
            ),
        )
    )
    catalog.register(
        _disk_table(
            base,
            buffer,
            "customers",
            Schema(
                [Column("cust", INT), Column("region", INT),
                 Column("pad", PAD)]
            ),
            ((c, c % 16, f"c{c}") for c in range(NUM_CUSTOMERS)),
        )
    )
    catalog.analyze()

    # Both join keys have ≤512 distinct values: forcing the hash
    # algorithm stages fine (value-directory) partitions on both sides.
    db = Database(
        catalog=catalog,
        planner_config=PlannerConfig(force_join="hash"),
        max_workers=WORKERS,
        workers=WORKERS,
    )
    db.set_parallel(morsel_pages=8, min_pages=8, min_rows=64)
    yield db
    db.close()


def _timed(statement) -> float:
    started = time.perf_counter()
    statement.execute()
    return time.perf_counter() - started


def _measure(db: Database) -> tuple[float, float, int]:
    """One cold round per mode: (barrier s, pipelined s, pages)."""
    statement = db.prepare(SQL)
    pages = sum(t.num_pages for t in db.catalog.tables())

    db.set_parallel(enabled=False)
    baseline = statement.execute()  # serial: the correctness reference

    db.set_parallel(enabled=True, pipeline=False)
    barrier_rows = statement.execute()  # warm plan + pools
    _drop_caches(db)
    barrier_seconds = _timed(statement)

    db.set_parallel(enabled=True, pipeline=True)
    pipelined_rows = statement.execute()
    _drop_caches(db)
    pipelined_seconds = _timed(statement)

    stats = db.last_exec_stats("hique")
    assert stats is not None and stats.parallel, stats
    assert stats.pipelined, stats
    # The whole point: the independent staging scans (and the join
    # behind them) genuinely overlapped...
    assert any(phase.overlap_seconds > 0 for phase in stats.phases), stats
    # ...and rows are byte-identical on every schedule.
    assert barrier_rows == pipelined_rows == baseline
    return barrier_seconds, pipelined_seconds, pages


@pytest.fixture(scope="module")
def pipeline_report(pipeline_db):
    rounds = [_measure(pipeline_db) for _ in range(ROUNDS)]
    barrier = min(r[0] for r in rounds)
    pipelined = min(r[1] for r in rounds)
    pages = rounds[0][2]
    best = {
        "barrier_seconds": barrier,
        "pipelined_seconds": pipelined,
        "speedup": barrier / pipelined,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "pages": pages,
        "orders_rows": NUM_CUSTOMERS * ORDERS_PER_CUSTOMER,
        "customers_rows": NUM_CUSTOMERS,
    }

    result = ExperimentResult(
        name="Pipelined scheduling: barrier vs dependency-driven "
        f"({WORKERS} workers, staged hash join + aggregation, cold disk)",
        headers=["mode", "barrier s", "pipelined s", "speedup"],
    )
    result.add(
        "stage ∥ stage ∥ join (both join inputs disk-resident)",
        best["barrier_seconds"],
        best["pipelined_seconds"],
        best["speedup"],
    )
    result.note(
        f"{pages} disk-backed pages across both inputs behind "
        f"{READ_LATENCY * 1000:.0f} ms modeled page latency; the barrier "
        f"schedule stages the inputs one after another (≤{WORKERS} "
        f"fetches in flight), the pipelined schedule stages them "
        f"concurrently and launches join pair tasks the moment both "
        f"partition sets finish. Buffer pool and OS cache dropped before "
        f"every timed round; best of {ROUNDS} rounds; rows byte-identical "
        f"across serial, barrier and pipelined."
    )
    save_result(result)

    save_bench_json("BENCH_pipeline.json", best)
    return best


def test_report_written(pipeline_report):
    path = os.path.join(RESULTS_DIR, "BENCH_pipeline.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["workers"] == WORKERS
    assert payload["speedup"] > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="pipelining gate needs >= 4 CPUs (overlapped staging cannot "
    "bank wall-clock time without real concurrency)",
)
def test_pipelined_meets_speedup_gate(pipeline_report):
    """Acceptance: ≥1.3× over barrier scheduling at 4 workers."""
    assert pipeline_report["speedup"] >= 1.3, pipeline_report
