"""Table III: query preparation cost (parse/optimize/generate/compile)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import get_scale, make_tpch_database, table3
from repro.bench.tpch import Q1, Q10, Q3
from repro.core.emitter import OPT_O0, OPT_O2


@pytest.fixture(scope="module")
def tpch_database():
    sizes = get_scale(BENCH_SCALE)
    return make_tpch_database(sizes.tpch_sf)


@pytest.fixture(scope="module")
def table3_report(tpch_database):
    result = table3(BENCH_SCALE, db=tpch_database)
    save_result(result)
    return result


def _prepare_runner(db, sql, opt_level):
    engine = db.engine("hique")
    return lambda: engine.prepare(
        sql, opt_level=opt_level, use_cache=False
    )


def test_prepare_q1_o2(benchmark, table3_report, tpch_database):
    benchmark.pedantic(
        _prepare_runner(tpch_database, Q1, OPT_O2), rounds=5
    )


def test_prepare_q1_o0(benchmark, tpch_database):
    benchmark.pedantic(
        _prepare_runner(tpch_database, Q1, OPT_O0), rounds=5
    )


def test_prepare_q3_o2(benchmark, tpch_database):
    benchmark.pedantic(
        _prepare_runner(tpch_database, Q3, OPT_O2), rounds=5
    )


def test_prepare_q10_o2(benchmark, tpch_database):
    benchmark.pedantic(
        _prepare_runner(tpch_database, Q10, OPT_O2), rounds=5
    )


def test_preparation_is_milliseconds(table3_report):
    """Preparation stays in the paper's regime: a handful of ms."""
    for row in table3_report.rows:
        _name, parse_ms, optimize_ms, generate_ms, c0, c2, src, binary = row
        assert parse_ms + optimize_ms + generate_ms + c2 < 1000
        assert src > 0
        assert binary > 0
