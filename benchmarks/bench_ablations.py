"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual mechanisms
the paper's design rests on:

* **partition count** for the hybrid hash-sort-merge join (the paper
  sizes M so a partition fits half the L2 cache);
* **staging prep placement** — sorting partitions during staging vs
  right before merging (Section V-B argues the latter keeps them L2
  resident);
* **join teams vs binary cascades** at fixed table count;
* **prepared-query cache** — executing a cached prepared query vs
  preparing from scratch each time (the paper's Section VI-D remark);
* **buffer-pool pressure** — the same scan with an ample vs tiny pool.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import _JOIN_SQL, get_scale
from repro.bench.reporting import ExperimentResult
from repro.bench.synth import make_join_pair, make_team_tables
from repro.core.engine import HiqueEngine
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


@pytest.fixture(scope="module")
def join_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    make_join_pair(catalog, sizes.join2_rows, sizes.join2_rows,
                   sizes.join2_matches)
    return catalog


@pytest.fixture(scope="module")
def partitions_report(join_workload):
    import time

    result = ExperimentResult(
        "Ablation: hybrid-join partition count (seconds)",
        ["Partitions", "Hybrid-HIQUE"],
    )
    engine = HiqueEngine(join_workload)
    for partitions in (2, 8, 32, 128, 512):
        prepared = engine.prepare(
            _JOIN_SQL,
            planner_config=PlannerConfig(
                force_join="hybrid", force_partitions=partitions
            ),
            use_cache=False,
        )
        started = time.perf_counter()
        engine.execute_prepared(prepared)
        result.add(partitions, time.perf_counter() - started)
    result.note(
        "the paper picks M so each partition fits half the L2 cache; "
        "in Python the sweet spot is flat but extremes cost extra "
        "list/bookkeeping work"
    )
    save_result(result)
    return result


def test_partitions_8(benchmark, partitions_report, join_workload):
    engine = HiqueEngine(join_workload)
    prepared = engine.prepare(
        _JOIN_SQL,
        planner_config=PlannerConfig(force_join="hybrid",
                                     force_partitions=8),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_partitions_128(benchmark, join_workload):
    engine = HiqueEngine(join_workload)
    prepared = engine.prepare(
        _JOIN_SQL,
        planner_config=PlannerConfig(force_join="hybrid",
                                     force_partitions=128),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_merge_vs_hybrid_same_workload(benchmark, join_workload):
    engine = HiqueEngine(join_workload)
    prepared = engine.prepare(
        _JOIN_SQL,
        planner_config=PlannerConfig(force_join="merge"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


@pytest.fixture(scope="module")
def team_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    tables = make_team_tables(
        catalog,
        big_rows=sizes.scan_rows,
        small_rows=max(sizes.scan_rows // 10, 10),
        num_small=4,
    )
    dims = [t.name for t in tables[1:]]
    select = ", ".join(["fact.f1"] + [f"{d}.f1" for d in dims])
    where = " AND ".join(f"fact.k = {d}.k" for d in dims)
    return catalog, f"SELECT {select} FROM fact, {', '.join(dims)} " \
                    f"WHERE {where}"


def test_team_enabled(benchmark, team_workload):
    catalog, sql = team_workload
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(
        sql,
        planner_config=PlannerConfig(enable_join_teams=True,
                                     force_join="merge"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_team_disabled(benchmark, team_workload):
    catalog, sql = team_workload
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(
        sql,
        planner_config=PlannerConfig(enable_join_teams=False,
                                     force_join="merge"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_prepared_cache_hit(benchmark, join_workload):
    """Executing a cached prepared query (the paper's recommendation
    for frequently issued queries)."""
    engine = HiqueEngine(join_workload)
    sql = _JOIN_SQL
    engine.prepare(sql)  # warm the cache

    def cached_roundtrip():
        prepared = engine.prepare(sql)  # cache hit
        return engine.execute_prepared(prepared)

    benchmark.pedantic(cached_roundtrip, rounds=3)


def test_prepare_from_scratch(benchmark, join_workload):
    engine = HiqueEngine(join_workload)

    def cold_roundtrip():
        prepared = engine.prepare(_JOIN_SQL, use_cache=False)
        return engine.execute_prepared(prepared)

    benchmark.pedantic(cold_roundtrip, rounds=3)


def test_buffer_pool_pressure(benchmark):
    """Same scan under an ample pool vs one that must evict constantly."""
    from repro.storage import (
        BufferManager, Catalog, Column, INT, Schema, Table,
    )

    buffer = BufferManager(capacity=8)
    catalog = Catalog(buffer)
    schema = Schema([Column("k", INT), Column("v", INT)])
    table = Table("t", schema, buffer=buffer)
    table.load_rows((i % 10, i) for i in range(20_000))
    catalog.register(table)
    catalog.analyze()
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(
        "SELECT k, sum(v) AS s FROM t GROUP BY k", use_cache=False
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)
