"""Figure 5: join-query profiling across the five code versions.

Regenerates the execution-time breakdowns (5a, 5b) and hardware-metric
tables (5c, 5d) via the simulated memory hierarchy, and benchmarks the
wall time of every code version on both join queries.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import _JOIN_SQL, fig5, get_scale
from repro.bench.synth import make_join_pair
from repro.core.engine import HiqueEngine
from repro.engines.hardcoded import hybrid_join_hardcoded, merge_join_hardcoded
from repro.engines.volcano import VolcanoEngine
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


@pytest.fixture(scope="module")
def fig5_report():
    """Run the traced profiling pass once and save all four tables."""
    results = fig5(BENCH_SCALE)
    for result in results:
        save_result(result)
    return results


@pytest.fixture(scope="module")
def join1_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    left, right = make_join_pair(
        catalog, sizes.join1_rows, sizes.join1_rows, sizes.join1_matches
    )
    return catalog, left, right, PlannerConfig(force_join="merge")


@pytest.fixture(scope="module")
def join2_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    left, right = make_join_pair(
        catalog, sizes.join2_rows, sizes.join2_rows, sizes.join2_matches
    )
    return catalog, left, right, PlannerConfig(
        force_join="hybrid", force_partitions=64
    )


def _volcano_runner(catalog, config, generic):
    engine = VolcanoEngine(catalog, generic=generic)
    plan = engine.plan(_JOIN_SQL, planner_config=config)
    return lambda: engine.execute_plan(plan)


def _hique_runner(catalog, config):
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(_JOIN_SQL, planner_config=config,
                              use_cache=False)
    return lambda: engine.execute_prepared(prepared)


def test_join1_generic_iterators(benchmark, fig5_report, join1_workload):
    catalog, _left, _right, config = join1_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=True), rounds=3
    )


def test_join1_optimized_iterators(benchmark, join1_workload):
    catalog, _left, _right, config = join1_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=False), rounds=3
    )


def test_join1_generic_hardcoded(benchmark, join1_workload):
    _catalog, left, right, _config = join1_workload
    benchmark.pedantic(
        lambda: merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style="generic",
            collect=True,
        ),
        rounds=3,
    )


def test_join1_optimized_hardcoded(benchmark, join1_workload):
    _catalog, left, right, _config = join1_workload
    benchmark.pedantic(
        lambda: merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style="optimized",
            collect=True,
        ),
        rounds=3,
    )


def test_join1_hique(benchmark, join1_workload):
    catalog, _left, _right, config = join1_workload
    benchmark.pedantic(_hique_runner(catalog, config), rounds=3)


def test_join2_generic_iterators(benchmark, join2_workload):
    catalog, _left, _right, config = join2_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=True), rounds=3
    )


def test_join2_optimized_iterators(benchmark, join2_workload):
    catalog, _left, _right, config = join2_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=False), rounds=3
    )


def test_join2_generic_hardcoded(benchmark, join2_workload):
    _catalog, left, right, _config = join2_workload
    benchmark.pedantic(
        lambda: hybrid_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), num_partitions=64,
            style="generic", collect=True,
        ),
        rounds=3,
    )


def test_join2_optimized_hardcoded(benchmark, join2_workload):
    _catalog, left, right, _config = join2_workload
    benchmark.pedantic(
        lambda: hybrid_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), num_partitions=64,
            style="optimized", collect=True,
        ),
        rounds=3,
    )


def test_join2_hique(benchmark, join2_workload):
    catalog, _left, _right, config = join2_workload
    benchmark.pedantic(_hique_runner(catalog, config), rounds=3)
