"""Table II: effect of compiler optimization (O0 vs O2) on all versions."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import _JOIN_SQL, get_scale, table2
from repro.bench.synth import make_join_pair
from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


@pytest.fixture(scope="module")
def table2_report():
    result = table2(BENCH_SCALE)
    save_result(result)
    return result


@pytest.fixture(scope="module")
def join1_engine():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    make_join_pair(
        catalog, sizes.join1_rows, sizes.join1_rows, sizes.join1_matches
    )
    return HiqueEngine(catalog), PlannerConfig(force_join="merge")


def test_hique_o0(benchmark, table2_report, join1_engine):
    engine, config = join1_engine
    prepared = engine.prepare(
        _JOIN_SQL, opt_level=OPT_O0, planner_config=config, use_cache=False
    )
    benchmark.pedantic(
        lambda: engine.execute_prepared(prepared), rounds=3
    )


def test_hique_o2(benchmark, join1_engine):
    engine, config = join1_engine
    prepared = engine.prepare(
        _JOIN_SQL, opt_level=OPT_O2, planner_config=config, use_cache=False
    )
    benchmark.pedantic(
        lambda: engine.execute_prepared(prepared), rounds=3
    )


def test_table2_shape(table2_report):
    """O2 beats O0 for every version on every query (10% jitter slack)."""
    for row in table2_report.rows:
        label, *times = row
        pairs = list(zip(times[0::2], times[1::2]))
        for o0_time, o2_time in pairs:
            assert o2_time < o0_time * 1.10, (label, o0_time, o2_time)
