"""Ablation: NSM vs PAX cache locality on narrow scans (paper §III).

Quantifies, through the simulated memory hierarchy, the storage-layout
discussion in the paper's related work: PAX keeps the tuple interface
while vertically partitioning within pages, so scans that touch few
attributes of wide tuples miss far less. This is the effect that makes
the DSM/MonetDB analogue strong on TPC-H (Figure 8), measured in
isolation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_result
from repro.bench.reporting import ExperimentResult
from repro.memsim.probe import Probe
from repro.storage.pax import pax_from_table, trace_nsm_scan, trace_pax_scan
from repro.storage.schema import Column, Schema
from repro.storage.table import table_from_rows
from repro.storage.types import INT, char


@pytest.fixture(scope="module")
def wide_workload():
    schema = Schema(
        [Column("k", INT)]
        + [Column(f"pad{i}", char(16)) for i in range(8)]
    )
    table = table_from_rows(
        "wide", schema, [(i, *["x"] * 8) for i in range(8_000)]
    )
    return table, pax_from_table(table)


@pytest.fixture(scope="module")
def locality_report(wide_workload):
    table, relation = wide_workload
    result = ExperimentResult(
        "Ablation: NSM vs PAX D1 misses (narrow scan of wide tuples)",
        ["Fields read", "NSM D1 misses", "PAX D1 misses", "NSM/PAX"],
    )
    for columns in ([0], [0, 1], list(range(9))):
        nsm_probe = Probe()
        trace_nsm_scan(table, columns, nsm_probe)
        pax_probe = Probe()
        trace_pax_scan(relation, columns, pax_probe)
        nsm_misses = nsm_probe.hierarchy.d1.stats.misses
        pax_misses = max(pax_probe.hierarchy.d1.stats.misses, 1)
        result.add(
            len(columns), nsm_misses, pax_misses,
            round(nsm_misses / pax_misses, 2),
        )
    result.note(
        "PAX wins while few attributes are touched and converges to NSM "
        "at full width — the trade-off Section III describes"
    )
    save_result(result)
    return result


def test_nsm_narrow_scan(benchmark, locality_report, wide_workload):
    table, _relation = wide_workload
    def scan():
        probe = Probe()
        trace_nsm_scan(table, [0], probe)
        return probe
    benchmark.pedantic(scan, rounds=2)


def test_pax_narrow_scan(benchmark, wide_workload):
    _table, relation = wide_workload
    def scan():
        probe = Probe()
        trace_pax_scan(relation, [0], probe)
        return probe
    benchmark.pedantic(scan, rounds=2)
