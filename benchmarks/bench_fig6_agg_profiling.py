"""Figure 6: aggregation profiling across the five code versions."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import _AGG_SQL, fig6, get_scale
from repro.bench.synth import make_group_table
from repro.core.engine import HiqueEngine
from repro.engines.hardcoded import hybrid_agg_hardcoded, map_agg_hardcoded
from repro.engines.volcano import VolcanoEngine
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


@pytest.fixture(scope="module")
def fig6_report():
    results = fig6(BENCH_SCALE)
    for result in results:
        save_result(result)
    return results


@pytest.fixture(scope="module")
def agg1_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    table = make_group_table(catalog, sizes.agg_rows, sizes.agg1_groups)
    return catalog, table, PlannerConfig(
        force_agg="hybrid", force_partitions=64
    )


@pytest.fixture(scope="module")
def agg2_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    table = make_group_table(catalog, sizes.agg_rows, sizes.agg2_groups)
    return catalog, table, PlannerConfig(force_agg="map")


def _volcano_runner(catalog, config, generic):
    engine = VolcanoEngine(catalog, generic=generic)
    plan = engine.plan(_AGG_SQL, planner_config=config)
    return lambda: engine.execute_plan(plan)


def _hique_runner(catalog, config):
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(_AGG_SQL, planner_config=config,
                              use_cache=False)
    return lambda: engine.execute_prepared(prepared)


def test_agg1_generic_iterators(benchmark, fig6_report, agg1_workload):
    catalog, _table, config = agg1_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=True), rounds=3
    )


def test_agg1_optimized_iterators(benchmark, agg1_workload):
    catalog, _table, config = agg1_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=False), rounds=3
    )


def test_agg1_generic_hardcoded(benchmark, agg1_workload):
    _catalog, table, _config = agg1_workload
    benchmark.pedantic(
        lambda: hybrid_agg_hardcoded(
            table, 0, (1, 2), (0, 1, 2), num_partitions=64,
            style="generic",
        ),
        rounds=3,
    )


def test_agg1_optimized_hardcoded(benchmark, agg1_workload):
    _catalog, table, _config = agg1_workload
    benchmark.pedantic(
        lambda: hybrid_agg_hardcoded(
            table, 0, (1, 2), (0, 1, 2), num_partitions=64,
            style="optimized",
        ),
        rounds=3,
    )


def test_agg1_hique(benchmark, agg1_workload):
    catalog, _table, config = agg1_workload
    benchmark.pedantic(_hique_runner(catalog, config), rounds=3)


def test_agg2_generic_iterators(benchmark, agg2_workload):
    catalog, _table, config = agg2_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=True), rounds=3
    )


def test_agg2_optimized_iterators(benchmark, agg2_workload):
    catalog, _table, config = agg2_workload
    benchmark.pedantic(
        _volcano_runner(catalog, config, generic=False), rounds=3
    )


def test_agg2_generic_hardcoded(benchmark, agg2_workload):
    _catalog, table, _config = agg2_workload
    benchmark.pedantic(
        lambda: map_agg_hardcoded(
            table, 0, (1, 2), (0, 1, 2), style="generic"
        ),
        rounds=3,
    )


def test_agg2_optimized_hardcoded(benchmark, agg2_workload):
    _catalog, table, _config = agg2_workload
    benchmark.pedantic(
        lambda: map_agg_hardcoded(
            table, 0, (1, 2), (0, 1, 2), style="optimized"
        ),
        rounds=3,
    )


def test_agg2_hique(benchmark, agg2_workload):
    catalog, _table, config = agg2_workload
    benchmark.pedantic(_hique_runner(catalog, config), rounds=3)
