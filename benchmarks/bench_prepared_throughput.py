"""Prepared-statement throughput: cold preparation vs warm plan cache.

Extends the Table III story: the paper measures what preparation (parse
+ optimize + generate + compile) costs per query and argues systems
amortize it by caching prepared statements.  Preparation is a
per-statement constant of a few milliseconds, so it dominates exactly
where production systems feel it — repeated *point* queries whose
execution touches little data.  This benchmark drives parameterized
point selections, a filtered aggregate and a point join over an
OLTP-style schema, comparing cold (cache bypassed: every execution pays
full preparation) against warm (one preparation, then ``params``-only
executions through the query service), reporting queries/sec and the
preparation time the cache saved.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.storage import Column, DOUBLE, INT, char

NUM_ACCOUNTS = 256
NUM_REGIONS = 16
REPEATS = 50

#: Parameterized statements driven with varying point values.
WORKLOADS = [
    (
        "point filter",
        "SELECT id, balance FROM accounts WHERE id = ?",
        lambda rng: (rng.randrange(NUM_ACCOUNTS),),
    ),
    (
        "filtered aggregate",
        "SELECT region, sum(balance) AS s, count(*) AS n FROM accounts "
        "WHERE balance > ? GROUP BY region",
        lambda rng: (float(rng.randrange(1000)),),
    ),
    (
        "point join",
        "SELECT a.id, a.balance, r.tag FROM accounts a, regions r "
        "WHERE a.region = r.region AND a.id = ?",
        lambda rng: (rng.randrange(NUM_ACCOUNTS),),
    ),
]


@pytest.fixture(scope="module")
def oltp_database():
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "accounts",
        [
            Column("id", INT),
            Column("balance", DOUBLE),
            Column("region", INT),
        ],
    )
    db.load_rows(
        "accounts",
        [
            (i, float(rng.randrange(100_000)) / 100, i % NUM_REGIONS)
            for i in range(NUM_ACCOUNTS)
        ],
    )
    db.create_table(
        "regions", [Column("region", INT), Column("tag", char(8))]
    )
    db.load_rows(
        "regions", [(r, f"r{r}") for r in range(NUM_REGIONS)]
    )
    db.analyze()
    yield db
    db.close()


def _run_cold(db: Database, sql: str, param_sets) -> float:
    """Every execution pays full preparation (cache bypassed)."""
    engine = db.engine("hique")
    started = time.perf_counter()
    for params in param_sets:
        prepared = engine.prepare(sql, use_cache=False)
        engine.execute_prepared(prepared, params=params)
    return time.perf_counter() - started


def _run_warm(db: Database, sql: str, param_sets) -> float:
    """One preparation through the service, then cached executions."""
    statement = db.prepare(sql)
    statement.execute(param_sets[0])  # ensure the plan is hot
    started = time.perf_counter()
    for params in param_sets:
        statement.execute(params)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def throughput_report(oltp_database):
    db = oltp_database
    result = ExperimentResult(
        name="Prepared-statement throughput: cold preparation vs warm "
        "plan cache",
        headers=[
            "workload",
            "cold q/s",
            "warm q/s",
            "speedup",
            "cold ms/q",
            "warm ms/q",
            "prep saved ms",
        ],
    )
    for label, sql, make_params in WORKLOADS:
        rng = random.Random(42)
        param_sets = [make_params(rng) for _ in range(REPEATS)]
        cold = _run_cold(db, sql, param_sets)
        warm = _run_warm(db, sql, param_sets)
        saved = db.service.stats().cache.seconds_saved
        result.add(
            label,
            REPEATS / cold,
            REPEATS / warm,
            cold / warm,
            cold / REPEATS * 1000,
            warm / REPEATS * 1000,
            saved * 1000,
        )
    result.note(
        f"{REPEATS} executions per workload over {NUM_ACCOUNTS} accounts; "
        f"cold pays full parse/optimize/generate/compile per query "
        f"(Table III's cost), warm reuses one cached compiled plan with "
        f"fresh parameters."
    )
    save_result(result)
    return result


def test_report(throughput_report):
    assert len(throughput_report.rows) == len(WORKLOADS)


def test_warm_cache_beats_cold_preparation_5x(throughput_report):
    """Acceptance: ≥5× latency reduction vs cold preparation."""
    for row in throughput_report.rows:
        label, _cold_qps, _warm_qps, speedup = row[:4]
        assert speedup >= 5.0, (label, speedup)


def test_preparation_time_saved_accumulates(throughput_report):
    saved = throughput_report.column("prep saved ms")
    assert all(s > 0 for s in saved)
    assert saved == sorted(saved)  # monotone across workloads


def test_point_query_warm(benchmark, oltp_database):
    statement = oltp_database.prepare(
        "SELECT id, balance FROM accounts WHERE id = ?"
    )
    statement.execute((1,))
    benchmark(statement.execute, (1,))


def test_point_query_cold(benchmark, oltp_database):
    engine = oltp_database.engine("hique")
    sql = "SELECT id, balance FROM accounts WHERE id = ?"

    def cold():
        prepared = engine.prepare(sql, use_cache=False)
        engine.execute_prepared(prepared, params=(1,))

    benchmark.pedantic(cold, rounds=10)
