"""Process vs thread backend on a CPU-bound in-memory pipeline.

The thread backend's wins come from overlapping page-fetch latency;
once the working set is memory resident, CPython's GIL serializes the
generated code and four thread workers collapse to ~1× on CPU-bound
phases.  The process backend exists precisely for this regime: staging
(tuple decode + partitioning), hybrid join pair evaluation (sort +
merge per coarse partition) and partial aggregation all ship to worker
processes that re-import the generated module, so the pipeline scales
with cores despite the GIL.

Both tables live in memory files — no modeled latency anywhere, so
every second measured is compute plus (for the process backend) task
serialization.  Rows are asserted byte-identical across serial, thread
and process executions before any timing counts.

The run writes ``BENCH_multiproc.json`` (a CI artifact) with the raw
seconds and the speedup.  The ≥2× acceptance gate needs real cores:
it is skipped, not failed, on hosts with ``os.cpu_count() < 4``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.plan.optimizer import PlannerConfig
from repro.storage import Catalog, Column, INT, Schema, char

WORKERS = 4
ROUNDS = 3
NUM_CUSTOMERS = 2048
ORDERS_PER_CUSTOMER = 40
NUM_REGIONS = 16

#: The shape matters twice over.  The scan pays real CPU per row
#: (decode four fields, multiply, compare, string-compare) while its
#: process payload is raw page *bytes*, which pickle at memcpy speed;
#: the ~3%-selective filter then keeps the row tuples that cross the
#: process boundary afterwards small.  The join runs as blocked
#: nested loops — O(outer × inner) compute over O(outer + inner)
#: payload — which is exactly the compute-dense, pure-data task shape
#: where worker processes leave the GIL behind.
SQL = (
    "SELECT customers.region AS region, "
    "sum(orders.amount * orders.qty) AS revenue, count(*) AS n "
    "FROM orders, customers "
    "WHERE orders.cust = customers.cust "
    "AND orders.amount * orders.qty < 30000 "
    "AND orders.status = 'S3' "
    "GROUP BY customers.region ORDER BY revenue DESC, region"
)


@pytest.fixture(scope="module")
def multiproc_db():
    catalog = Catalog()
    orders = catalog.create_table(
        "orders",
        Schema(
            [
                Column("cust", INT),
                Column("amount", INT),
                Column("qty", INT),
                Column("status", char(8)),
            ]
        ),
    )
    orders.load_rows(
        (
            i % NUM_CUSTOMERS,
            (i * 7919) % 10_000,
            i % 50,
            # Knuth-hash the status so it is uncorrelated with cust —
            # the filtered rows must still cover every region.
            f"S{((i * 2654435761) >> 5) % 8}",
        )
        for i in range(NUM_CUSTOMERS * ORDERS_PER_CUSTOMER)
    )
    customers = catalog.create_table(
        "customers",
        Schema([Column("cust", INT), Column("region", INT)]),
    )
    customers.load_rows(
        (c, c % NUM_REGIONS) for c in range(NUM_CUSTOMERS)
    )
    catalog.analyze()

    db = Database(
        catalog=catalog,
        planner_config=PlannerConfig(force_join="nested"),
        max_workers=WORKERS,
        workers=WORKERS,
    )
    db.set_parallel(morsel_pages=8, min_pages=4, min_rows=512)
    yield db
    db.close()


def _timed(statement) -> float:
    started = time.perf_counter()
    statement.execute()
    return time.perf_counter() - started


def _measure(db: Database) -> tuple[float, float, list[tuple]]:
    """One round: (thread seconds, process seconds) plus baseline rows."""
    statement = db.prepare(SQL)

    db.set_parallel(enabled=False)
    baseline = statement.execute()  # serial: the correctness reference

    db.set_parallel(enabled=True, executor="thread")
    thread_rows = statement.execute()  # warm the plan + pool
    thread_seconds = _timed(statement)

    db.set_parallel(enabled=True, executor="process")
    process_rows = statement.execute()  # warm pool + worker imports
    process_seconds = _timed(statement)

    stats = db.last_exec_stats("hique")
    assert stats is not None and stats.parallel, stats
    assert stats.backend == "process", stats
    assert any(
        phase.name == "join" and phase.workers > 1 for phase in stats.phases
    ), stats
    # The whole point: rows are byte-identical on every substrate.
    assert thread_rows == process_rows == baseline
    return thread_seconds, process_seconds, baseline


@pytest.fixture(scope="module")
def multiproc_report(multiproc_db):
    rounds = [_measure(multiproc_db) for _ in range(ROUNDS)]
    thread_seconds = min(r[0] for r in rounds)
    process_seconds = min(r[1] for r in rounds)
    best = {
        "thread_seconds": thread_seconds,
        "process_seconds": process_seconds,
        "speedup": thread_seconds / process_seconds,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "orders_rows": NUM_CUSTOMERS * ORDERS_PER_CUSTOMER,
        "customers_rows": NUM_CUSTOMERS,
    }

    result = ExperimentResult(
        name="Multiprocess execution: thread vs process backend "
        f"({WORKERS} workers, CPU-bound in-memory join + aggregation)",
        headers=["mode", "thread s", "process s", "speedup"],
    )
    result.add(
        "hybrid join + group-by + ORDER BY (in-memory)",
        best["thread_seconds"],
        best["process_seconds"],
        best["speedup"],
    )
    result.note(
        f"{best['orders_rows']:,} order rows joined against "
        f"{best['customers_rows']} customers entirely in memory; the "
        f"thread backend is GIL-bound here, the process backend ships "
        f"staging/join-pair/aggregate tasks to {WORKERS} worker "
        f"processes (host has {best['cpu_count']} CPU(s)). Best of "
        f"{ROUNDS} rounds; rows byte-identical across serial, thread "
        f"and process."
    )
    save_result(result)

    save_bench_json("BENCH_multiproc.json", best)
    return best


def test_report_written(multiproc_report):
    path = os.path.join(RESULTS_DIR, "BENCH_multiproc.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["workers"] == WORKERS
    assert payload["speedup"] > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup gate needs >= 4 CPUs (process workers cannot "
    "beat threads without real cores)",
)
def test_process_backend_meets_speedup_gate(multiproc_report):
    """Acceptance: >=2x over the thread backend at 4 workers."""
    assert multiproc_report["speedup"] >= 2.0, multiproc_report
