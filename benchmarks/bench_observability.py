"""Observability overhead: the disabled tracing path must be near-free.

The instrumentation contract is that a database that never turns
tracing on pays only the disabled-gate checks (one module-level int
read per hook).  This benchmark drives the prepared-statement
throughput workload — warm point queries, where per-query fixed costs
dominate — in three configurations:

* **suppressed** — ``suppress_overhead_probe()`` makes every hook
  behave as if the instrumentation were absent: the no-hook control.
* **disabled** — tracing off, hooks live (the shipping default).
* **enabled** — full span recording, reported for context.

The gate asserts disabled-vs-suppressed overhead below 3% (min of
interleaved rounds on both sides, so scheduler noise cancels).  A
second pair of interleaved rounds gates the workload-insights record
path (digest fold per execution, on by default) below 3% against the
same workload with insights off.  The run also exports a sample Chrome
``trace_event`` file from an enabled execution and the rendered
insights view, which CI uploads as artifacts.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.obs import suppress_overhead_probe
from repro.storage import Column, DOUBLE, INT, char

NUM_ACCOUNTS = 256
NUM_REGIONS = 16
EXECUTIONS_PER_ROUND = 300
ROUNDS = 7
OVERHEAD_GATE = 0.03

POINT_SQL = "SELECT id, balance FROM accounts WHERE id = ?"
JOIN_AGG_SQL = (
    "SELECT r.tag, sum(a.balance) AS s, count(*) AS n "
    "FROM accounts a, regions r WHERE a.region = r.region "
    "GROUP BY r.tag ORDER BY r.tag"
)


@pytest.fixture(scope="module")
def obs_database():
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "accounts",
        [
            Column("id", INT),
            Column("balance", DOUBLE),
            Column("region", INT),
        ],
    )
    db.load_rows(
        "accounts",
        [
            (i, float(rng.randrange(100_000)) / 100, i % NUM_REGIONS)
            for i in range(NUM_ACCOUNTS)
        ],
    )
    db.create_table(
        "regions", [Column("region", INT), Column("tag", char(8))]
    )
    db.load_rows("regions", [(r, f"r{r}") for r in range(NUM_REGIONS)])
    db.analyze()
    yield db
    db.close()


def _round_seconds(statement, param_sets) -> float:
    started = time.perf_counter()
    for params in param_sets:
        statement.execute(params)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def overhead_report(obs_database):
    db = obs_database
    rng = random.Random(42)
    statement = db.prepare(POINT_SQL)
    param_sets = [
        (rng.randrange(NUM_ACCOUNTS),) for _ in range(EXECUTIONS_PER_ROUND)
    ]
    statement.execute(param_sets[0])  # warm the plan cache

    suppressed: list[float] = []
    disabled: list[float] = []
    enabled: list[float] = []
    # Interleave the configurations within each round so clock drift
    # and scheduler noise hit all three alike.
    for _ in range(ROUNDS):
        with suppress_overhead_probe():
            suppressed.append(_round_seconds(statement, param_sets))
        db.set_trace(False)
        disabled.append(_round_seconds(statement, param_sets))
        db.set_trace(True)
        enabled.append(_round_seconds(statement, param_sets))
        db.set_trace(False)

    # Insights rounds: tracing stays off (the shipping default); only
    # the digest/slow-log record path toggles between the sides.
    insights_on: list[float] = []
    insights_off: list[float] = []
    for _ in range(ROUNDS):
        db.set_insights(True)
        insights_on.append(_round_seconds(statement, param_sets))
        db.set_insights(False)
        insights_off.append(_round_seconds(statement, param_sets))
    db.set_insights(True)

    base = min(suppressed)
    # Per-round ratios: each round interleaves the configurations, so
    # ambient load inflates numerator and denominator together; taking
    # the cleanest round's ratio (not the ratio of global minima, which
    # may come from different rounds) cancels machine noise.
    overhead_disabled = min(
        d / s for d, s in zip(disabled, suppressed)
    ) - 1.0
    overhead_enabled = min(
        e / s for e, s in zip(enabled, suppressed)
    ) - 1.0
    overhead_insights = min(
        on / off for on, off in zip(insights_on, insights_off)
    ) - 1.0
    payload = {
        "executions_per_round": EXECUTIONS_PER_ROUND,
        "rounds": ROUNDS,
        "suppressed_seconds": base,
        "disabled_seconds": min(disabled),
        "enabled_seconds": min(enabled),
        "disabled_overhead": overhead_disabled,
        "enabled_overhead": overhead_enabled,
        "insights_on_seconds": min(insights_on),
        "insights_off_seconds": min(insights_off),
        "insights_overhead": overhead_insights,
        "gate": OVERHEAD_GATE,
    }

    result = ExperimentResult(
        name="Observability overhead: disabled tracing vs no-hook control",
        headers=["configuration", "best round s", "q/s", "overhead %"],
    )
    for label, seconds in (
        ("no hooks (control)", base),
        ("tracing disabled", min(disabled)),
        ("tracing enabled", min(enabled)),
        ("insights off", min(insights_off)),
        ("insights on (default)", min(insights_on)),
    ):
        result.add(
            label,
            seconds,
            EXECUTIONS_PER_ROUND / seconds,
            (seconds / base - 1.0) * 100.0,
        )
    result.note(
        f"{EXECUTIONS_PER_ROUND} warm point queries per round, best of "
        f"{ROUNDS} interleaved rounds per configuration; the disabled "
        f"path must stay within {OVERHEAD_GATE * 100:.0f}% of the "
        f"no-hook control."
    )
    result.note(
        f"insights on vs off measured the same way (tracing off on "
        f"both sides); the digest record path must also stay within "
        f"{OVERHEAD_GATE * 100:.0f}%."
    )
    save_result(result)
    save_bench_json("BENCH_observability.json", payload)
    return payload


@pytest.fixture(scope="module")
def insights_artifact_path(obs_database, overhead_report):
    """The rendered workload-insights view, exported for CI."""
    db = obs_database
    db.execute(JOIN_AGG_SQL)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "insights_observability.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(db.insights_text(top=10) + "\n")
    return path


@pytest.fixture(scope="module")
def sample_trace_path(obs_database):
    """An enabled-run Chrome trace, exported for the CI artifact."""
    db = obs_database
    db.set_trace(True)
    try:
        db.execute(JOIN_AGG_SQL)
        trace = db.last_trace()
    finally:
        db.set_trace(False)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "trace_observability_sample.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.to_chrome_trace())
    return path


def test_report_written(overhead_report):
    import json

    path = os.path.join(RESULTS_DIR, "BENCH_observability.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["rounds"] == ROUNDS
    assert payload["suppressed_seconds"] > 0
    assert "history" in payload


def test_disabled_overhead_under_gate(overhead_report):
    """Acceptance: tracing-disabled overhead <3% on the prepared-
    throughput workload."""
    assert overhead_report["disabled_overhead"] < OVERHEAD_GATE, (
        overhead_report
    )


def test_insights_overhead_under_gate(overhead_report):
    """Acceptance: insights-on (the default) adds <3% on warm
    prepared-statement throughput."""
    assert overhead_report["insights_overhead"] < OVERHEAD_GATE, (
        overhead_report
    )


def test_insights_artifact_exported(insights_artifact_path):
    with open(insights_artifact_path, encoding="utf-8") as handle:
        text = handle.read()
    assert "workload insights" in text
    assert "slow-query log" in text


def test_sample_trace_exported(sample_trace_path):
    import json

    with open(sample_trace_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert events
    names = {event["name"] for event in events}
    assert "query" in names or "explain_analyze" in names
