"""Figure 8: TPC-H Q1/Q3/Q10 across the four comparison systems."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import fig8, get_scale, make_tpch_database
from repro.bench.tpch import Q1, Q10, Q3


@pytest.fixture(scope="module")
def tpch_database():
    sizes = get_scale(BENCH_SCALE)
    db = make_tpch_database(sizes.tpch_sf)
    db.engine("vectorized").preload()
    return db


@pytest.fixture(scope="module")
def fig8_report(tpch_database):
    result = fig8(BENCH_SCALE, db=tpch_database)
    save_result(result)
    return result


def _hique_runner(db, sql):
    engine = db.engine("hique")
    prepared = engine.prepare(sql, use_cache=False)
    return lambda: engine.execute_prepared(prepared)


def test_q1_hique(benchmark, fig8_report, tpch_database):
    benchmark.pedantic(_hique_runner(tpch_database, Q1), rounds=3)


def test_q1_postgres_analog(benchmark, tpch_database):
    engine = tpch_database.engine("volcano-generic")
    benchmark.pedantic(lambda: engine.execute(Q1), rounds=2)


def test_q1_systemx_analog(benchmark, tpch_database):
    engine = tpch_database.engine("systemx")
    benchmark.pedantic(lambda: engine.execute(Q1), rounds=2)


def test_q1_monetdb_analog(benchmark, tpch_database):
    engine = tpch_database.engine("vectorized")
    benchmark.pedantic(lambda: engine.execute(Q1), rounds=3)


def test_q3_hique(benchmark, tpch_database):
    benchmark.pedantic(_hique_runner(tpch_database, Q3), rounds=3)


def test_q3_postgres_analog(benchmark, tpch_database):
    engine = tpch_database.engine("volcano-generic")
    benchmark.pedantic(lambda: engine.execute(Q3), rounds=2)


def test_q3_monetdb_analog(benchmark, tpch_database):
    engine = tpch_database.engine("vectorized")
    benchmark.pedantic(lambda: engine.execute(Q3), rounds=3)


def test_q10_hique(benchmark, tpch_database):
    benchmark.pedantic(_hique_runner(tpch_database, Q10), rounds=3)


def test_q10_postgres_analog(benchmark, tpch_database):
    engine = tpch_database.engine("volcano-generic")
    benchmark.pedantic(lambda: engine.execute(Q10), rounds=2)


def test_q10_monetdb_analog(benchmark, tpch_database):
    engine = tpch_database.engine("vectorized")
    benchmark.pedantic(lambda: engine.execute(Q10), rounds=3)


def test_fig8_shape(fig8_report):
    """HIQUE beats both NSM iterator systems on every query."""
    hique = fig8_report.row_by("System", "HIQUE")
    postgres = fig8_report.row_by("System", "PostgreSQL*")
    systemx = fig8_report.row_by("System", "System X*")
    for column in range(1, 4):
        assert hique[column] < postgres[column]
        assert hique[column] < systemx[column]
