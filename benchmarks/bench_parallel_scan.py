"""Parallel scan throughput: serialized baseline vs concurrent readers.

PR 1's service serialized every engine execution behind a global lock,
so concurrent sessions queued even when the hardware could overlap
their work.  With the storage spine latched and the lock replaced by a
readers-writer gate, read queries run concurrently — and on
disk-resident data their I/O waits overlap, which is where a
single-interpreter runtime actually banks wall-clock time.

Two measurements over cold, disk-backed tables.  The OS page cache is
dropped between rounds, kernel readahead is disabled
(``DiskFile.advise_random``), and each page fetch additionally carries
a modeled seek latency (``DiskFile(read_latency=...)`` — the disk-level
analogue of the memsim cache model), so every scan waits on storage the
way a latency-bound system does (spinning or networked disks, shared
multi-tenant storage) regardless of how fast the host's SSD happens to
be.  That modeled wait is what makes the acceptance gate deterministic
across machines:

* **inter-query**: one scan statement per shard, executed one at a time
  (serialized baseline) vs submitted together to the 4-worker session
  pool (concurrent);
* **intra-query**: one large table scanned serially vs morsel-parallel
  with 4 workers pulling page ranges from the dispatcher.

Besides the rendered table, the run writes ``BENCH_parallel.json``
(consumed by CI as an artifact) with the raw seconds and speedups.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, save_bench_json, save_result
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.parallel import ParallelConfig
from repro.storage import Catalog, Column, INT, Schema, char
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import DiskFile
from repro.storage.table import Table

NUM_SHARDS = 8
ROWS_PER_SHARD = 100  # 50 pages of 2 wide (~2 KB) tuples each
SESSION_WORKERS = 4
ROUNDS = 5
#: Modeled per-page fetch latency: a seek-bound / networked disk.  Long
#: enough that sleep-timer overshoot is noise, not signal.
READ_LATENCY = 1e-3

#: Wide tuples keep per-page decode cheap relative to the page read, as
#: in the paper's TPC-H tables; the scans decode only the two INTs.
SHARD_SCHEMA = [
    Column("id", INT),
    Column("flag", INT),
    Column("pad", char(2000)),
]


def _shard_rows(shard: int):
    return (
        (i, (i + shard) % 2, f"pad{shard}") for i in range(ROWS_PER_SHARD)
    )


def _drop_caches(db: Database) -> None:
    """Cold-start a round: empty the buffer pool and the OS page cache."""
    db.buffer.evict_all()
    for table in db.catalog.tables():
        if isinstance(table.file, DiskFile):
            table.file.drop_os_cache()


@pytest.fixture(scope="module")
def sharded_db(tmp_path_factory):
    base = tmp_path_factory.mktemp("parallel_scan")
    # The pool holds one round's working set; cold starts come from the
    # explicit cache drops, not from eviction churn inside the timed
    # region (which would serialize under the pool latch).
    buffer = BufferManager(capacity=8192)
    catalog = Catalog(buffer)
    schema = Schema(SHARD_SCHEMA)
    for shard in range(NUM_SHARDS):
        file = DiskFile(
            str(base / f"shard_{shard}.pages"), read_latency=READ_LATENCY
        )
        table = Table(f"shard_{shard}", schema, file=file, buffer=buffer)
        table.load_rows(_shard_rows(shard))
        file.advise_random()
        catalog.register(table)
    big_file = DiskFile(str(base / "big.pages"), read_latency=READ_LATENCY)
    big = Table("big", schema, file=big_file, buffer=buffer)
    for shard in range(NUM_SHARDS):
        big.load_rows(_shard_rows(shard))
    big_file.advise_random()
    catalog.register(big)
    catalog.analyze()
    db = Database(
        catalog=catalog, max_workers=SESSION_WORKERS, workers=SESSION_WORKERS
    )
    db.set_parallel(morsel_pages=16, min_pages=8)
    yield db
    db.close()


def _expected(shard: int) -> list[tuple]:
    total = sum((i + shard) % 2 for i in range(ROWS_PER_SHARD))
    return [(total, ROWS_PER_SHARD)]


def _measure_inter_query(db: Database) -> tuple[float, float]:
    """(serialized seconds, concurrent seconds) for one cold round each.

    Intra-query morsels are disabled for both rounds so the measurement
    isolates what the *service* layer adds: the serialized round mimics
    PR 1's global execution lock (queries strictly one after another),
    the concurrent round admits all sessions at once.
    """
    db.set_parallel(enabled=False)
    statements = [
        db.prepare(
            f"SELECT sum(flag) AS s, count(*) AS n FROM shard_{shard}"
        )
        for shard in range(NUM_SHARDS)
    ]
    for statement in statements:  # plans hot, data cold after the drop
        statement.execute()

    _drop_caches(db)
    started = time.perf_counter()
    for shard, statement in enumerate(statements):
        assert statement.execute() == _expected(shard)
    serialized = time.perf_counter() - started

    _drop_caches(db)
    started = time.perf_counter()
    futures = [
        db.service.submit(
            f"SELECT sum(flag) AS s, count(*) AS n FROM shard_{shard}"
        )
        for shard in range(NUM_SHARDS)
    ]
    for shard, future in enumerate(futures):
        assert future.result(timeout=300) == _expected(shard)
    concurrent = time.perf_counter() - started
    return serialized, concurrent


def _measure_intra_query(db: Database) -> tuple[float, float]:
    """(serial seconds, morsel-parallel seconds) for the big-table scan."""
    sql = "SELECT sum(flag) AS s, count(*) AS n FROM big"
    want = [
        (
            sum(_expected(shard)[0][0] for shard in range(NUM_SHARDS)),
            NUM_SHARDS * ROWS_PER_SHARD,
        )
    ]
    statement = db.prepare(sql)
    statement.execute()

    db.set_parallel(enabled=False)
    _drop_caches(db)
    started = time.perf_counter()
    assert statement.execute() == want
    serial = time.perf_counter() - started

    db.set_parallel(enabled=True)
    statement.execute()  # re-warm the plan under the new config
    _drop_caches(db)
    started = time.perf_counter()
    assert statement.execute() == want
    parallel = time.perf_counter() - started
    stats = db.last_exec_stats("hique")
    assert stats is not None and stats.parallel, stats
    return serial, parallel


@pytest.fixture(scope="module")
def parallel_report(sharded_db):
    db = sharded_db
    inter_rounds, intra_rounds = [], []
    for _ in range(ROUNDS):
        inter_rounds.append(_measure_inter_query(db))
        intra_rounds.append(_measure_intra_query(db))
    # Each mode keeps its best (minimum) time across rounds, which damps
    # scheduler noise symmetrically instead of crediting the concurrent
    # side for rounds where the serial baseline was penalized.
    serialized = min(r[0] for r in inter_rounds)
    concurrent = min(r[1] for r in inter_rounds)
    morsel_serial = min(r[0] for r in intra_rounds)
    morsel_parallel = min(r[1] for r in intra_rounds)
    best = {
        "serialized_seconds": serialized,
        "concurrent_seconds": concurrent,
        "inter_query_speedup": serialized / concurrent,
        "morsel_serial_seconds": morsel_serial,
        "morsel_parallel_seconds": morsel_parallel,
        "intra_query_speedup": morsel_serial / morsel_parallel,
    }

    result = ExperimentResult(
        name="Parallel scan: serialized baseline vs "
        f"{SESSION_WORKERS}-worker concurrency (cold disk)",
        headers=["mode", "serial s", "parallel s", "speedup"],
    )
    result.add(
        f"inter-query ({NUM_SHARDS} shard scans)",
        best["serialized_seconds"],
        best["concurrent_seconds"],
        best["inter_query_speedup"],
    )
    result.add(
        "intra-query (morsel scan of one table)",
        best["morsel_serial_seconds"],
        best["morsel_parallel_seconds"],
        best["intra_query_speedup"],
    )
    result.note(
        f"{NUM_SHARDS} disk-backed shards × {ROWS_PER_SHARD} wide rows; "
        f"OS page cache and buffer pool dropped before every timed round, "
        f"so concurrent readers overlap genuine read I/O. Best of "
        f"{ROUNDS} rounds."
    )
    save_result(result)

    payload = dict(
        best,
        workers=SESSION_WORKERS,
        shards=NUM_SHARDS,
        rows_per_shard=ROWS_PER_SHARD,
    )
    save_bench_json("BENCH_parallel.json", payload)
    return best


def test_report_written(parallel_report):
    path = os.path.join(RESULTS_DIR, "BENCH_parallel.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["workers"] == SESSION_WORKERS
    assert payload["inter_query_speedup"] > 0


_FEW_CPUS = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup gates are calibrated for >= 4 CPUs",
)


@_FEW_CPUS
def test_concurrent_reads_beat_serialized_baseline(parallel_report):
    """Acceptance: ≥1.5× concurrent read throughput with 4 workers."""
    assert parallel_report["inter_query_speedup"] >= 1.5, parallel_report


@_FEW_CPUS
def test_morsel_scan_overlaps_io(parallel_report):
    """Intra-query morsels must at least not regress a cold scan."""
    assert parallel_report["intra_query_speedup"] >= 1.0, parallel_report
