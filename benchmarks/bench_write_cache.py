"""Version-keyed intermediate reuse: warm repeated queries skip staging.

HIQUE's Table III shows staging — decoding heap pages into contiguous
sort/partition buffers — dominating per-query cost for join plans.  The
``IntermediateCache`` banks that work: staged scan output is keyed by
``(table, version, staging signature)``, so a warm repeat of the same
plan against unmutated tables copies the staged buffers instead of
re-decoding and re-sorting both join inputs.  DML bumps the mutated
table's version epoch, which drops exactly that table's entries and
leaves the other input's staging banked.

The measured query is a sort-staged merge join + grouped aggregation —
the regime where re-staging is O(n log n) per input and reuse is a flat
copy.  Both modes run the identical plan on the identical parallel
configuration; the "uncached" mode simply detaches the intermediate
cache from the executor.  Rows are asserted identical across cached,
uncached and post-DML executions before any timing counts.

The run writes ``BENCH_write_cache.json`` (a CI artifact, gated through
``repro.obs.regress``) with raw seconds and ``staging_speedup``.  The
acceptance gate is ≥2×: the warm cached run must cost at most half the
warm uncached run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import (
    BENCH_SCALE,
    RESULTS_DIR,
    save_bench_json,
    save_result,
)
from repro.api import Database
from repro.bench.reporting import ExperimentResult
from repro.plan.optimizer import PlannerConfig
from repro.storage import Column, INT

WORKERS = 4
ROUNDS = 5
#: Timed executions per mode per round; the per-mode minimum survives.
REPEATS = 3

ROWS = {"tiny": 10_000, "small": 40_000, "medium": 120_000}.get(
    BENCH_SCALE, 40_000
)

#: Sort-staged merge join feeding grouped aggregation: both inputs are
#: staged (decoded + sorted on the join key) before the join runs, so a
#: warm repeat with the cache attached reuses both sorted runs.
SQL = (
    "SELECT t.b AS g, count(u.v) AS n, sum(u.v) AS s FROM t, u "
    "WHERE t.a = u.k GROUP BY t.b ORDER BY g"
)


@pytest.fixture(scope="module")
def write_cache_db():
    db = Database(
        workers=WORKERS,
        planner_config=PlannerConfig(force_join="merge"),
    )
    db.create_table("t", [Column("a", INT), Column("b", INT)])
    db.load_rows(
        "t", [((i * 7919) % 100_000, i % 16) for i in range(ROWS)]
    )
    db.create_table("u", [Column("k", INT), Column("v", INT)])
    db.load_rows(
        "u", [((i * 104_729) % 100_000, i % 9) for i in range(ROWS)]
    )
    db.analyze()
    yield db
    db.close()


def _best(statement) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        statement.execute()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(db: Database) -> tuple[float, float]:
    """One round: (warm cached s, warm uncached s), rows verified."""
    statement = db.prepare(SQL)
    db.intermediates.clear()
    cold_rows = statement.execute()  # cold: stages and banks both inputs
    cached_seconds = _best(statement)
    cached_rows = statement.execute()
    # The warm runs genuinely reused staged output — otherwise the
    # timing below compares nothing.
    assert db.intermediates.stats().hits >= 2

    executor = db.engine("hique").parallel
    saved = executor.intermediates
    executor.intermediates = None
    try:
        statement.execute()  # warm plan/pools without the cache
        uncached_seconds = _best(statement)
        uncached_rows = statement.execute()
    finally:
        executor.intermediates = saved

    assert cold_rows == cached_rows == uncached_rows
    return cached_seconds, uncached_seconds


@pytest.fixture(scope="module")
def write_cache_report(write_cache_db):
    db = write_cache_db
    rounds = [_measure(db) for _ in range(ROUNDS)]
    cached = min(r[0] for r in rounds)
    uncached = min(r[1] for r in rounds)

    # Fine-grained invalidation: DML on u drops only u's banked
    # staging; the warm re-run re-stages u but still reuses t's.
    reference = db.execute(SQL)
    hits_before = db.intermediates.stats().hits
    db.execute("INSERT INTO u VALUES (0, 1)")  # key 0 matches t's i=0 row
    after_dml = db.execute(SQL)
    partial_hits = db.intermediates.stats().hits - hits_before
    assert partial_hits >= 1  # t's staging survived the write to u
    assert after_dml != reference  # the write is visible

    best = {
        "cached_seconds": cached,
        "uncached_seconds": uncached,
        "staging_speedup": uncached / cached,
        "partial_reuse_hits_after_dml": partial_hits,
        "rows_per_table": ROWS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "scale": BENCH_SCALE,
    }

    result = ExperimentResult(
        name="Write path intermediate cache: warm staged merge join, "
        f"reuse vs re-stage ({ROWS} rows/input, {WORKERS} workers)",
        headers=["mode", "cached s", "uncached s", "speedup"],
    )
    result.add(
        "sort-staged merge join + grouped aggregation",
        best["cached_seconds"],
        best["uncached_seconds"],
        best["staging_speedup"],
    )
    result.note(
        f"Both join inputs sort-staged; cached mode reuses the banked "
        f"sorted runs keyed by (table, version, staging signature), "
        f"uncached mode re-decodes and re-sorts per execution. Best of "
        f"{ROUNDS} rounds x {REPEATS} repeats; rows identical across "
        f"modes; after an INSERT into one input the warm re-run still "
        f"reused the other input's staging ({partial_hits} hit(s))."
    )
    save_result(result)

    save_bench_json("BENCH_write_cache.json", best)
    return best


def test_report_written(write_cache_report):
    path = os.path.join(RESULTS_DIR, "BENCH_write_cache.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["staging_speedup"] > 0
    assert payload["rows_per_table"] == ROWS


def test_staging_reuse_meets_speedup_gate(write_cache_report):
    """Acceptance: warm repeats with banked staging run ≥2× faster."""
    assert write_cache_report["staging_speedup"] >= 2.0, write_cache_report
