"""Figure 7: performance of the holistic algorithms.

Regenerates all four panels — join scalability (a), multi-way joins /
join teams (b), join predicate selectivity (c), grouping cardinality
(d) — and benchmarks the headline configurations of each.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, save_result
from repro.bench.experiments import (
    _AGG_SQL,
    _JOIN_SQL,
    fig7a,
    fig7b,
    fig7c,
    fig7d,
    get_scale,
)
from repro.bench.synth import make_group_table, make_join_pair, make_team_tables
from repro.core.engine import HiqueEngine
from repro.engines.volcano import VolcanoEngine
from repro.plan.optimizer import PlannerConfig
from repro.storage.catalog import Catalog


@pytest.fixture(scope="module")
def fig7_reports():
    results = [
        fig7a(BENCH_SCALE),
        fig7b(BENCH_SCALE),
        fig7c(BENCH_SCALE),
        fig7d(BENCH_SCALE),
    ]
    for result in results:
        save_result(result)
    return results


@pytest.fixture(scope="module")
def scalability_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    make_join_pair(catalog, sizes.scan_rows, sizes.scan_rows * 4, 10)
    return catalog


@pytest.fixture(scope="module")
def team_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    tables = make_team_tables(
        catalog,
        big_rows=sizes.scan_rows,
        small_rows=max(sizes.scan_rows // 10, 10),
        num_small=3,
    )
    dims = [t.name for t in tables[1:]]
    select = ", ".join(["fact.f1"] + [f"{d}.f1" for d in dims])
    where = " AND ".join(f"fact.k = {d}.k" for d in dims)
    sql = f"SELECT {select} FROM fact, {', '.join(dims)} WHERE {where}"
    return catalog, sql


@pytest.fixture(scope="module")
def grouping_workload():
    sizes = get_scale(BENCH_SCALE)
    catalog = Catalog()
    make_group_table(catalog, sizes.agg_rows, 100)
    return catalog


def test_fig7a_merge_hique(benchmark, fig7_reports, scalability_workload):
    engine = HiqueEngine(scalability_workload)
    prepared = engine.prepare(
        _JOIN_SQL,
        planner_config=PlannerConfig(force_join="merge"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_fig7a_hybrid_hique(benchmark, scalability_workload):
    engine = HiqueEngine(scalability_workload)
    prepared = engine.prepare(
        _JOIN_SQL,
        planner_config=PlannerConfig(force_join="hybrid"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_fig7a_merge_iterators(benchmark, scalability_workload):
    engine = VolcanoEngine(scalability_workload)
    plan = engine.plan(
        _JOIN_SQL, planner_config=PlannerConfig(force_join="merge")
    )
    benchmark.pedantic(lambda: engine.execute_plan(plan), rounds=3)


def test_fig7b_team_merge_hique(benchmark, team_workload):
    catalog, sql = team_workload
    engine = HiqueEngine(catalog)
    prepared = engine.prepare(
        sql,
        planner_config=PlannerConfig(
            enable_join_teams=True, force_join="merge"
        ),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_fig7b_binary_merge_iterators(benchmark, team_workload):
    catalog, sql = team_workload
    engine = VolcanoEngine(catalog)
    plan = engine.plan(
        sql,
        planner_config=PlannerConfig(
            enable_join_teams=False, force_join="merge"
        ),
    )
    benchmark.pedantic(lambda: engine.execute_plan(plan), rounds=3)


def test_fig7d_map_hique(benchmark, grouping_workload):
    engine = HiqueEngine(grouping_workload)
    prepared = engine.prepare(
        _AGG_SQL,
        planner_config=PlannerConfig(force_agg="map"),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_fig7d_hybrid_hique(benchmark, grouping_workload):
    engine = HiqueEngine(grouping_workload)
    prepared = engine.prepare(
        _AGG_SQL,
        planner_config=PlannerConfig(
            force_agg="hybrid", force_partitions=64
        ),
        use_cache=False,
    )
    benchmark.pedantic(lambda: engine.execute_prepared(prepared), rounds=3)


def test_fig7d_map_iterators(benchmark, grouping_workload):
    engine = VolcanoEngine(grouping_workload)
    plan = engine.plan(
        _AGG_SQL, planner_config=PlannerConfig(force_agg="map")
    )
    benchmark.pedantic(lambda: engine.execute_plan(plan), rounds=3)
